open Wolves_workflow
open Wolves_core
module Reach = Wolves_graph.Reach
module Par = Wolves_par.Par
module Query = Wolves_query.Query
module Lint = Wolves_lint.Lint
module Repository = Wolves_repository.Repository

type t = { views : (string, View.t) Hashtbl.t; ids : string list }

(* Force every lazily-built structure a request handler can touch. After
   this, concurrent handlers only read: the closure rows, the transposed
   ancestors cache, the label index and the view-graph closure are all
   immutable once built. *)
let pin view =
  let spec = View.spec view in
  let reach = Spec.reach spec in
  ignore (Spec.labels spec);
  if Spec.n_tasks spec > 0 then ignore (Reach.ancestors reach 0);
  ignore (View.view_reach view)

let load entries =
  let views = Hashtbl.create (List.length entries * 2) in
  List.iter
    (fun (id, view) ->
      if id = "" then invalid_arg "Service.load: empty id";
      if Hashtbl.mem views id then
        invalid_arg (Printf.sprintf "Service.load: duplicate id %s" id);
      Hashtbl.add views id view)
    entries;
  (* The index builds are independent per view and read-only for everyone
     else, so they farm across the pool; the join barrier publishes them to
     the worker domains that will serve requests. *)
  ignore (Par.map_ordered (fun (_, v) -> pin v) (Array.of_list entries));
  let ids = List.map fst entries |> List.sort compare in
  { views; ids }

let of_files paths =
  let load_one path =
    let result =
      if Filename.check_suffix path ".wf" then
        match Wolves_lang.Wfdsl.load path with
        | Ok (_, view) -> Ok view
        | Error e ->
            Error (Format.asprintf "%a" Wolves_lang.Wfdsl.pp_error e)
      else
        match Wolves_moml.Moml.load path with
        | Ok (_, view) -> Ok view
        | Error e -> Error (Format.asprintf "%a" Wolves_moml.Moml.pp_error e)
    in
    match result with
    | Ok view -> Ok (Filename.remove_extension (Filename.basename path), view)
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: ps -> (
        match load_one p with
        | Ok entry -> go (entry :: acc) ps
        | Error _ as e -> e)
  in
  match go [] paths with
  | Error msg -> Error msg
  | Ok entries -> (
      match load entries with
      | t -> Ok t
      | exception Invalid_argument msg -> Error msg)

let of_repository repo =
  load
    (List.map
       (fun e -> (e.Repository.id, e.Repository.view))
       (Repository.entries repo))

let of_store dir =
  match Repository.load_store dir with
  | Ok repo -> Ok (of_repository repo)
  | Error e -> Error (Format.asprintf "%a" Repository.pp_io_error e)

let ids t = t.ids
let size t = List.length t.ids
let find t id = Hashtbl.find_opt t.views id

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)
(* ------------------------------------------------------------------ *)

let criterion_name c = Format.asprintf "%a" Corrector.pp_criterion c

let list_line t id =
  let view = Hashtbl.find t.views id in
  let spec = View.spec view in
  Printf.sprintf "%s tasks %d composites %d" id (Spec.n_tasks spec)
    (View.n_composites view)

let validate_lines ~domains view =
  let report = Soundness.validate ~domains view in
  let head =
    [ Printf.sprintf "workflow %s" (Spec.name (View.spec view));
      Printf.sprintf "composites %d" (View.n_composites view);
      Printf.sprintf "sound %b" (report.Soundness.unsound = []) ]
  in
  head
  @ List.map
      (fun (c, witnesses) ->
        Printf.sprintf "unsound %s witnesses %d"
          (View.composite_name view c)
          (List.length witnesses))
      report.Soundness.unsound

(* Correction replies never include wall-clock readings: with the modeled
   check cost dominating on corpus-sized gadgets, the whole reply is a
   deterministic function of (corpus, request, spent_s) — the property the
   chaos suite pins down. *)
let correct_lines ~domains ~spent_s view = function
  | Protocol.Criterion crit ->
      let corrected, outcomes = Corrector.correct ~domains crit view in
      Printf.sprintf "corrected %d criterion %s" (List.length outcomes)
        (criterion_name crit)
      :: List.map
           (fun (c, o) ->
             Printf.sprintf "split %s parts %d"
               (View.composite_name view c)
               (List.length o.Corrector.parts))
           outcomes
      @ [ Printf.sprintf "composites %d" (View.n_composites corrected) ]
  | Protocol.Deadline_ms ms ->
      let deadline_s = ms /. 1000. in
      let corrected, outcomes =
        Corrector.correct_with_deadline ~spent_s ~deadline_s view
      in
      Printf.sprintf "corrected %d deadline_ms %g" (List.length outcomes) ms
      :: List.map
           (fun (c, (o : Corrector.tier_outcome)) ->
             Printf.sprintf "split %s parts %d tier %s proven %b%s"
               (View.composite_name view c)
               (List.length o.result.parts)
               (criterion_name o.tier) o.proven_optimal
               (match o.abandoned with
               | None -> ""
               | Some a -> " abandoned " ^ criterion_name a))
           outcomes
      @ [ Printf.sprintf "composites %d" (View.n_composites corrected) ]

let terminal_lines diagnostics =
  Lint.to_terminal ~color:false diagnostics
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

let analysis_rules =
  [ "spec/annotation-inconsistent"; "spec/annotation-incomplete";
    "spec/dead-data"; "view/hidden-dependency" ]

let handle ?(domains = 1) ?(spent_s = 0.) ?default_deadline_ms t request =
  let with_view id k =
    match Hashtbl.find_opt t.views id with
    | None ->
        Protocol.Err
          ( "unknown-id",
            Printf.sprintf "no workflow %s loaded (try LIST)"
              (Protocol.sanitize id) )
    | Some view -> k view
  in
  try
    match request with
    | Protocol.Ping -> Protocol.Ok_lines [ "pong" ]
    | Protocol.Quit -> Protocol.Ok_lines [ "bye" ]
    | Protocol.List_ids -> Protocol.Ok_lines (List.map (list_line t) t.ids)
    | Protocol.Stats | Protocol.Health | Protocol.Metrics | Protocol.Trace ->
        Protocol.Err
          ( "bad-request",
            "STATS, HEALTH, METRICS and TRACE are served, not library calls" )
    | Protocol.Validate id ->
        with_view id (fun v -> Protocol.Ok_lines (validate_lines ~domains v))
    | Protocol.Correct (id, what) ->
        with_view id (fun v ->
            let what =
              match (what, default_deadline_ms) with
              | Some w, _ -> w
              | None, Some ms -> Protocol.Deadline_ms ms
              | None, None -> Protocol.Criterion Corrector.Strong
            in
            Protocol.Ok_lines (correct_lines ~domains ~spent_s v what))
    | Protocol.Query (id, expr) ->
        with_view id (fun v ->
            match Query.eval_names v expr with
            | Ok names -> Protocol.Ok_lines names
            | Error e ->
                Protocol.Err
                  ( "bad-request",
                    Printf.sprintf "query error at %d: %s" e.Query.position
                      e.Query.message ))
    | Protocol.Lint id ->
        with_view id (fun v -> Protocol.Ok_lines (terminal_lines (Lint.run v)))
    | Protocol.Analyze id ->
        with_view id (fun v ->
            let config =
              { Lint.default_config with rules = Some analysis_rules }
            in
            Protocol.Ok_lines (terminal_lines (Lint.run ~config v)))
  with
  | Invalid_argument msg -> Protocol.Err ("bad-request", msg)
  | e -> Protocol.Err ("internal", Printexc.to_string e)
