(** The request handlers behind {!Server}, as a plain library: a corpus of
    named workflow views with every index pinned, and a total
    [request -> reply] function.

    Keeping this separate from the connection machinery is what makes the
    chaos property testable — "the reply the server sent" and "the direct
    library call" are the {e same} function, {!handle}, so byte-identity
    under injected faults is a meaningful assertion rather than a parallel
    reimplementation. *)

open Wolves_workflow

type t

val load : (string * View.t) list -> t
(** Build a corpus. Forces every lazily-built index each view can reach —
    the dense closure, its transposed ancestors cache, the
    {!Wolves_graph.Labels} chain/interval index, and the view-graph closure
    — so concurrent request handlers only ever read shared state. Pinning
    is farmed over the {!Wolves_par.Par} pool.
    @raise Invalid_argument on duplicate or empty ids. *)

val of_files : string list -> (t, string) result
(** Load [.wf] documents (via {!Wolves_lang.Wfdsl}) or MoML files; each
    corpus id is the file's basename without extension. *)

val of_store : string -> (t, string) result
(** Load every workflow of a {!Wolves_storage.Store} directory (via
    {!Wolves_repository.Repository.load_store}); corpus ids are the
    repository ids. *)

val of_repository : Wolves_repository.Repository.t -> t

val ids : t -> string list
(** Sorted. *)

val size : t -> int
val find : t -> string -> View.t option

val handle :
  ?domains:int ->
  ?spent_s:float ->
  ?default_deadline_ms:float ->
  t ->
  Protocol.request ->
  Protocol.reply
(** Answer one request. Total: never raises — library exceptions come back
    as [Err ("internal", _)], invalid arguments as [Err ("bad-request", _)].
    Deterministic for a fixed corpus and request, which is what the chaos
    tests assert byte-for-byte.

    [spent_s] (default 0) is time already charged against the request's
    deadline — the server passes its admission-queue wait, so queued
    [CORRECT ... DEADLINE] requests degrade tiers instead of overstaying.
    [default_deadline_ms] bounds bare [CORRECT <id>] requests; without it
    they run the strong criterion unbounded. [domains] defaults to [1]:
    request handlers run one per worker domain, so inner parallelism must
    stay off ({!Wolves_par.Par}'s pool is owned by whole-process phases,
    not concurrent independent callers).

    [Stats] and [Health] are answered by {!Server}, which owns the
    counters; here they return a [bad-request] error. *)
