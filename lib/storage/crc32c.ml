(* Reflected CRC-32C: the table entry for byte [n] is the CRC of that single
   byte, and the running state folds one byte per step. All arithmetic stays
   within 32 bits, well inside OCaml's 63-bit native int. *)

let poly = 0x82F63B78 (* 0x1EDC6F41 bit-reversed *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let substring s ~pos ~len = update 0 s ~pos ~len

let string s = substring s ~pos:0 ~len:(String.length s)
