(** CRC-32C (Castagnoli, polynomial 0x1EDC6F41), the checksum guarding every
    WAL record and segment header of {!Store}.

    Software table-driven implementation; values match the usual hardware
    instruction ([crc32c("123456789") = 0xE3069283]). Results are in
    [0, 2^32), carried in an OCaml [int]. *)

val string : string -> int
(** Checksum of a whole string. *)

val substring : string -> pos:int -> len:int -> int
(** Checksum of [len] bytes starting at [pos].
    @raise Invalid_argument when the range is out of bounds. *)

val update : int -> string -> pos:int -> len:int -> int
(** Extend a running checksum: [update (string a) b ~pos:0
    ~len:(String.length b) = string (a ^ b)]. *)
