exception Io_failure of string
exception Crashed of string

type handle = {
  path : string;
  write : string -> unit;
  fsync : unit -> unit;
  close : unit -> unit;
}

type t = {
  mkdir : string -> unit;
  readdir : string -> string list;
  exists : string -> bool;
  file_size : string -> int;
  read_file : string -> string;
  open_append : string -> handle;
  rename : string -> string -> unit;
  remove : string -> unit;
  truncate : string -> int -> unit;
  fsync_dir : string -> unit;
}

(* --- the real filesystem --- *)

let wrap f =
  try f () with
  | Unix.Unix_error (e, fn, arg) ->
    raise (Io_failure (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))
  | Sys_error msg -> raise (Io_failure msg)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let system =
  { mkdir =
      (fun dir ->
        wrap (fun () ->
            try Unix.mkdir dir 0o755
            with Unix.Unix_error (Unix.EEXIST, _, _) -> ()));
    readdir =
      (fun dir ->
        wrap (fun () ->
            let entries = Sys.readdir dir in
            Array.sort compare entries;
            Array.to_list entries));
    exists = (fun path -> Sys.file_exists path);
    file_size = (fun path -> wrap (fun () -> (Unix.stat path).Unix.st_size));
    read_file =
      (fun path ->
        wrap (fun () -> In_channel.with_open_bin path In_channel.input_all));
    open_append =
      (fun path ->
        wrap (fun () ->
            let fd =
              Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
                0o644
            in
            { path;
              write =
                (fun s -> wrap (fun () -> write_all fd s 0 (String.length s)));
              fsync = (fun () -> wrap (fun () -> Unix.fsync fd));
              close = (fun () -> wrap (fun () -> Unix.close fd)) }));
    rename = (fun src dst -> wrap (fun () -> Unix.rename src dst));
    remove = (fun path -> wrap (fun () -> Unix.unlink path));
    truncate = (fun path len -> wrap (fun () -> Unix.truncate path len));
    fsync_dir =
      (fun dir ->
        (* Directory fsync is what makes a rename durable on Linux; some
           filesystems reject fsync on a directory fd, which is the one
           failure worth swallowing. *)
        try
          let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
        with Unix.Unix_error _ | Sys_error _ -> ()) }

(* --- fault injection --- *)

type op =
  | Write
  | Fsync
  | Rename
  | Remove
  | Truncate

let op_name = function
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Remove -> "remove"
  | Truncate -> "truncate"

type plan =
  | Crash_after_ops of int
  | Crash_at_byte of int
  | Error_on_op of op * int

type injector = {
  mutable ops_seen : int;
  mutable bytes_written : int;
  mutable fired : bool;
  mutable dead : bool;
}

let faulty plan io =
  let inj = { ops_seen = 0; bytes_written = 0; fired = false; dead = false } in
  let per_kind = Hashtbl.create 8 in
  (* Gate one mutating operation: raises instead of returning when the
     failpoint decides this operation never executes. *)
  let gate op =
    if inj.dead then raise (Crashed "process already dead");
    let k = inj.ops_seen in
    inj.ops_seen <- k + 1;
    let kind_k =
      let c = Option.value ~default:0 (Hashtbl.find_opt per_kind op) in
      Hashtbl.replace per_kind op (c + 1);
      c
    in
    match plan with
    | Crash_after_ops n when k >= n ->
      inj.fired <- true;
      inj.dead <- true;
      raise (Crashed (Printf.sprintf "crash before %s (op %d)" (op_name op) k))
    | Error_on_op (target, n) when target = op && kind_k = n ->
      inj.fired <- true;
      raise (Io_failure (Printf.sprintf "injected error on %s %d" (op_name op) n))
    | Crash_after_ops _ | Crash_at_byte _ | Error_on_op _ -> ()
  in
  let guarded_write (underlying : string -> unit) s =
    gate Write;
    let len = String.length s in
    (match plan with
     | Crash_at_byte k when inj.bytes_written + len > k ->
       let keep = k - inj.bytes_written in
       if keep > 0 then underlying (String.sub s 0 keep);
       inj.bytes_written <- inj.bytes_written + keep;
       inj.fired <- true;
       inj.dead <- true;
       raise
         (Crashed
            (Printf.sprintf "crash mid-write at byte %d (wrote %d of %d)" k keep
               len))
     | Crash_after_ops _ | Crash_at_byte _ | Error_on_op _ ->
       underlying s;
       inj.bytes_written <- inj.bytes_written + len)
  in
  let wrap_handle h =
    { h with
      write = (fun s -> guarded_write h.write s);
      fsync =
        (fun () ->
          gate Fsync;
          h.fsync ());
      (* Closing is not a durability point and cannot fail interestingly;
         but a dead process closes nothing. *)
      close =
        (fun () -> if not inj.dead then h.close ()) }
  in
  let check_alive () = if inj.dead then raise (Crashed "process already dead") in
  ( { io with
      open_append =
        (fun path ->
          check_alive ();
          wrap_handle (io.open_append path));
      mkdir =
        (fun dir ->
          check_alive ();
          io.mkdir dir);
      readdir =
        (fun dir ->
          check_alive ();
          io.readdir dir);
      read_file =
        (fun path ->
          check_alive ();
          io.read_file path);
      rename =
        (fun src dst ->
          gate Rename;
          io.rename src dst);
      remove =
        (fun path ->
          gate Remove;
          io.remove path);
      truncate =
        (fun path len ->
          gate Truncate;
          io.truncate path len);
      fsync_dir =
        (fun dir ->
          gate Fsync;
          io.fsync_dir dir) },
    inj )
