(** The pluggable I/O layer underneath {!Store}.

    Every byte the store reads or writes goes through one of these records,
    so a test harness can interpose failpoints — short writes, transient
    errors, simulated process death at an arbitrary operation or byte — and
    drive the crash-matrix property: {e reopening after a crash at any point
    recovers exactly the committed records}.

    Two failure channels are distinguished:

    - {!Io_failure} models an I/O error the process survives (disk full,
      permission); the store catches it and returns [Error].
    - {!Crashed} models the process dying mid-operation; it deliberately
      escapes the store — the "process" is gone — and the harness reopens
      the directory with a fresh I/O layer to exercise recovery. *)

exception Io_failure of string
(** A survivable I/O error. Implementations raise it for every failure;
    {!system} translates [Unix_error]/[Sys_error] into it. *)

exception Crashed of string
(** Simulated process death, raised by {!faulty} when its failpoint fires.
    Once raised, every further operation through that layer raises it too
    (a dead process issues no more I/O). *)

(** An open append-only file. *)
type handle = {
  path : string;
  write : string -> unit;  (** append the whole string (or raise) *)
  fsync : unit -> unit;    (** flush the file's data to stable storage *)
  close : unit -> unit;
}

type t = {
  mkdir : string -> unit;  (** create (idempotent — an existing directory is fine) *)
  readdir : string -> string list;  (** base names, sorted *)
  exists : string -> bool;
  file_size : string -> int;
  read_file : string -> string;
  open_append : string -> handle;  (** create the file when missing *)
  rename : string -> string -> unit;
  remove : string -> unit;
  truncate : string -> int -> unit;
  fsync_dir : string -> unit;
      (** flush directory metadata (created/renamed entries); best-effort on
          filesystems that do not support it *)
}

val system : t
(** The real filesystem, via [Unix]. *)

(* --- fault injection --- *)

(** Mutating operation kinds, for {!Error_on_op} targeting. Reads never
    fail under injection — the crash matrix is about durability, not read
    availability. *)
type op =
  | Write
  | Fsync
  | Rename
  | Remove
  | Truncate

val op_name : op -> string

(** One failpoint. Operations are counted across the whole layer, 0-based,
    in the order they are issued; only mutating operations ({!op}) count. *)
type plan =
  | Crash_after_ops of int
      (** the first [n] mutating operations succeed; operation [n] does not
          execute and raises {!Crashed} *)
  | Crash_at_byte of int
      (** writes succeed until [k] cumulative bytes have been appended; the
          write crossing byte [k] is {e short} — its prefix up to byte [k]
          reaches the file, then {!Crashed} is raised (the torn-record
          generator) *)
  | Error_on_op of op * int
      (** the [n]-th operation of that kind raises {!Io_failure} without
          executing; every other operation proceeds normally (a transient
          error, not a crash) *)

(** Counters observed by the wrapped layer, exposed so a harness can first
    measure a fault-free run ([ops_seen], [bytes_written]) and then sweep
    every injection point up to those totals. *)
type injector = {
  mutable ops_seen : int;      (** mutating operations issued so far *)
  mutable bytes_written : int; (** cumulative bytes reaching files *)
  mutable fired : bool;        (** the failpoint has triggered *)
  mutable dead : bool;         (** a crash plan fired; all further ops raise *)
}

val faulty : plan -> t -> t * injector
(** Wrap an I/O layer with one failpoint. The returned {!injector} is live:
    the harness reads it after the run (and [Crash_after_ops max_int] turns
    the wrapper into a pure operation counter). *)
