module Io = Storage_io
module Obs = Wolves_obs.Metrics

let m_appends = Obs.counter "store.wal.appends"
let m_append_bytes = Obs.counter "store.wal.append_bytes"
let m_fsyncs = Obs.counter "store.wal.fsyncs"
let m_seals = Obs.counter "store.wal.seals"
let m_manifest_swaps = Obs.counter "store.wal.manifest_swaps"
let m_truncated = Obs.counter "store.recovery.truncated_tail"
let m_recovered = Obs.counter "store.recovery.records"
let t_append = Obs.timer "store.wal.append"
let t_recovery = Obs.timer "store.recovery.time"
let t_open = Obs.timer "store.open"

type error =
  | Io of string
  | Corrupt of string
  | Not_a_store of string

let pp_error ppf = function
  | Io msg -> Format.fprintf ppf "i/o error: %s" msg
  | Corrupt msg -> Format.fprintf ppf "corrupt store: %s" msg
  | Not_a_store dir -> Format.fprintf ppf "%s: not a wolves store" dir

exception Fail of error

let io_guard f =
  try Ok (f ()) with
  | Io.Io_failure msg -> Error (Io msg)
  | Fail e -> Error e

type kind =
  | Workflow
  | Checkpoint

let kind_name = function Workflow -> "workflow" | Checkpoint -> "checkpoint"

let kind_byte = function Workflow -> 1 | Checkpoint -> 2

let kind_of_byte = function 1 -> Some Workflow | 2 -> Some Checkpoint | _ -> None

type record = {
  kind : kind;
  id : string;
  lsn : int;
  value : string;
}

type config = {
  shards : int;
  segment_bytes : int;
}

let default_config = { shards = 4; segment_bytes = 4 * 1024 * 1024 }

(* --- binary format ------------------------------------------------------ *)

let magic = "WOLVESEG"
let format_version = 1
let header_len = 16
let record_header_len = 8
let max_record_len = 1 lsl 30
let catalog = "CATALOG"

let u16le buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let u32le buf v =
  u16le buf (v land 0xFFFF);
  u16le buf ((v lsr 16) land 0xFFFF)

let u64le buf v =
  u32le buf (v land 0xFFFFFFFF);
  u32le buf ((v lsr 32) land 0x7FFFFFFF)

let get_u16 s pos = Char.code s.[pos] lor (Char.code s.[pos + 1] lsl 8)

let get_u32 s pos = get_u16 s pos lor (get_u16 s (pos + 2) lsl 16)

let get_u64 s pos = get_u32 s pos lor (get_u32 s (pos + 4) lsl 32)

let segment_header shard =
  let buf = Buffer.create header_len in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr format_version);
  Buffer.add_char buf (Char.chr shard);
  u16le buf 0;
  let body = Buffer.contents buf in
  u32le buf (Crc32c.string body);
  Buffer.contents buf

let encode_record ~kind ~lsn ~id ~value =
  let payload_len = 1 + 8 + 2 + String.length id + String.length value in
  let buf = Buffer.create (record_header_len + payload_len) in
  u32le buf payload_len;
  u32le buf 0 (* checksum backpatched below *);
  Buffer.add_char buf (Char.chr (kind_byte kind));
  u64le buf lsn;
  u16le buf (String.length id);
  Buffer.add_string buf id;
  Buffer.add_string buf value;
  let bytes = Buffer.to_bytes buf in
  let crc =
    Crc32c.substring
      (Bytes.unsafe_to_string bytes)
      ~pos:record_header_len ~len:payload_len
  in
  Bytes.set bytes 4 (Char.chr (crc land 0xFF));
  Bytes.set bytes 5 (Char.chr ((crc lsr 8) land 0xFF));
  Bytes.set bytes 6 (Char.chr ((crc lsr 16) land 0xFF));
  Bytes.set bytes 7 (Char.chr ((crc lsr 24) land 0xFF));
  Bytes.unsafe_to_string bytes

let decode_payload s pos len =
  if len < 11 then Error "record payload too short"
  else
    match kind_of_byte (Char.code s.[pos]) with
    | None -> Error "unknown record kind"
    | Some kind ->
      let lsn = get_u64 s (pos + 1) in
      let id_len = get_u16 s (pos + 9) in
      if 11 + id_len > len then Error "id overruns record"
      else
        Ok
          { kind;
            id = String.sub s (pos + 11) id_len;
            lsn;
            value = String.sub s (pos + 11 + id_len) (len - 11 - id_len) }

(* Scan one segment's full content. Returns the decoded records of the valid
   prefix, the prefix length in bytes, and how the scan ended. [`Torn] means
   the data ran off end-of-file — the signature of a crash mid-append;
   [`Corrupt] means a record failed validation with its bytes all present —
   the signature of in-place corruption (bit flips). Recovery truncates at
   the boundary either way; {!verify} reports them separately. *)
let scan_segment ~shard content =
  let n = String.length content in
  if n < header_len then ([], 0, `Torn (0, "truncated segment header"))
  else if String.sub content 0 (String.length magic) <> magic then
    ([], 0, `Corrupt (0, "bad segment magic"))
  else if get_u32 content 12 <> Crc32c.substring content ~pos:0 ~len:12 then
    ([], 0, `Corrupt (0, "segment header checksum mismatch"))
  else if Char.code content.[String.length magic] <> format_version then
    ([], 0, `Corrupt (0, "unsupported segment version"))
  else if Char.code content.[String.length magic + 1] <> shard then
    ([], 0, `Corrupt (0, "segment header names another shard"))
  else begin
    let records = ref [] in
    let pos = ref header_len in
    let status = ref `Clean in
    let continue_ = ref true in
    while !continue_ && !pos < n do
      if n - !pos < record_header_len then begin
        status := `Torn (!pos, "truncated record header");
        continue_ := false
      end
      else begin
        let len = get_u32 content !pos in
        let crc = get_u32 content (!pos + 4) in
        if len > max_record_len then begin
          status := `Corrupt (!pos, "implausible record length");
          continue_ := false
        end
        else if !pos + record_header_len + len > n then begin
          status := `Torn (!pos, "truncated record body");
          continue_ := false
        end
        else if
          Crc32c.substring content ~pos:(!pos + record_header_len) ~len <> crc
        then begin
          status := `Corrupt (!pos, "record checksum mismatch");
          continue_ := false
        end
        else
          match decode_payload content (!pos + record_header_len) len with
          | Error reason ->
            status := `Corrupt (!pos, reason);
            continue_ := false
          | Ok r ->
            records := r :: !records;
            pos := !pos + record_header_len + len
      end
    done;
    (List.rev !records, !pos, !status)
  end

(* --- sharding ----------------------------------------------------------- *)

let shard_of_id ~shards id =
  (* FNV-1a, folded to 32 bits: stable across runs and platforms. *)
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    id;
  !h mod shards

let segment_file shard seq = Printf.sprintf "shard%03d-%06d.seg" shard seq

let parse_segment_file name =
  if
    String.length name = 19
    && String.sub name 0 5 = "shard"
    && Filename.check_suffix name ".seg"
    && name.[8] = '-'
  then
    match
      (int_of_string_opt (String.sub name 5 3), int_of_string_opt (String.sub name 9 6))
    with
    | Some shard, Some seq -> Some (shard, seq)
    | _ -> None
  else None

(* --- store state -------------------------------------------------------- *)

type seg = {
  file : string;
  mutable seg_bytes : int;
  mutable seg_records : int;
}

type shard_state = {
  shard : int;
  mutable segs : seg list; (* oldest first; the last one is active *)
  mutable next_seq : int;
  mutable handle : Io.handle option;
  mutable dirty : bool;
}

type t = {
  dir : string;
  io : Io.t;
  config : config;
  shard_states : shard_state array;
  mutable next_lsn : int;
  mutable generation : int;
  mutable closed : bool;
}

type recovery = {
  segments_scanned : int;
  records_recovered : int;
  truncations : (string * int * int) list;
  dropped_segments : string list;
  swept_tmp : string list;
  manifest_rebuilt : bool;
}

let in_dir t file = Filename.concat t.dir file

(* --- catalog manifest --------------------------------------------------- *)

let manifest_text t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "wolves-store 1\n";
  Buffer.add_string buf (Printf.sprintf "shards %d\n" t.config.shards);
  Buffer.add_string buf
    (Printf.sprintf "segment_bytes %d\n" t.config.segment_bytes);
  Buffer.add_string buf (Printf.sprintf "generation %d\n" t.generation);
  Buffer.add_string buf (Printf.sprintf "next_lsn %d\n" t.next_lsn);
  Array.iter
    (fun st ->
      List.iter
        (fun seg ->
          Buffer.add_string buf
            (Printf.sprintf "segment %d %s %d %d\n" st.shard seg.file
               seg.seg_bytes seg.seg_records))
        st.segs)
    t.shard_states;
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "crc %08x\n" (Crc32c.string body)

(* The atomic swap: new content under a temporary name, fsync, rename over
   CATALOG, fsync the directory. A crash at any step leaves either the old
   catalog or the new one — never a torn mix — and stray temporaries are
   swept on the next open. *)
let write_manifest t =
  t.generation <- t.generation + 1;
  let tmp_name = Printf.sprintf "%s.tmp-%d" catalog t.generation in
  let tmp = in_dir t tmp_name in
  if t.io.Io.exists tmp then t.io.Io.remove tmp;
  let h = t.io.Io.open_append tmp in
  (try
     h.Io.write (manifest_text t);
     h.Io.fsync ()
   with e ->
     (try h.Io.close () with Io.Io_failure _ -> ());
     raise e);
  h.Io.close ();
  t.io.Io.rename tmp (in_dir t catalog);
  t.io.Io.fsync_dir t.dir;
  Obs.incr m_manifest_swaps

type manifest = {
  m_shards : int;
  m_segment_bytes : int;
  m_generation : int;
  m_segments : (int * string) list; (* shard, file *)
}

let parse_manifest text =
  match String.index_opt text '\n' with
  | None -> Error "empty catalog"
  | Some _ ->
    let lines = String.split_on_char '\n' text in
    let rec split_crc acc = function
      | [ crc_line; "" ] | [ crc_line ] -> Some (List.rev acc, crc_line)
      | line :: rest -> split_crc (line :: acc) rest
      | [] -> None
    in
    (match split_crc [] lines with
     | None -> Error "catalog too short"
     | Some (body_lines, crc_line) ->
       let body = String.concat "\n" body_lines ^ "\n" in
       (match String.split_on_char ' ' crc_line with
        | [ "crc"; hex ] when
            (match int_of_string_opt ("0x" ^ hex) with
             | Some crc -> crc = Crc32c.string body
             | None -> false) ->
          let shards = ref 0
          and segment_bytes = ref 0
          and generation = ref 0
          and segments = ref []
          and bad = ref None in
          List.iteri
            (fun i line ->
              if !bad = None then
                match (i, String.split_on_char ' ' line) with
                | 0, [ "wolves-store"; "1" ] -> ()
                | 0, _ -> bad := Some "unknown catalog version"
                | _, [ "shards"; v ] ->
                  shards := Option.value ~default:0 (int_of_string_opt v)
                | _, [ "segment_bytes"; v ] ->
                  segment_bytes := Option.value ~default:0 (int_of_string_opt v)
                | _, [ "generation"; v ] ->
                  generation := Option.value ~default:0 (int_of_string_opt v)
                | _, [ "next_lsn"; _ ] -> ()
                | _, [ "segment"; shard; file; _bytes; _records ] ->
                  (match int_of_string_opt shard with
                   | Some s -> segments := (s, file) :: !segments
                   | None -> bad := Some "bad segment line")
                | _, _ -> bad := Some "unrecognised catalog line")
            body_lines;
          (match !bad with
           | Some msg -> Error msg
           | None ->
             if !shards < 1 || !shards > 256 then Error "bad shard count"
             else
               Ok
                 { m_shards = !shards;
                   m_segment_bytes = max 1024 !segment_bytes;
                   m_generation = !generation;
                   m_segments = List.rev !segments })
        | _ -> Error "catalog checksum mismatch"))

(* --- open / recovery ---------------------------------------------------- *)

let validate_config config =
  if config.shards < 1 || config.shards > 256 then
    invalid_arg "Store: shards must be within [1, 256]";
  if config.segment_bytes < 1024 then
    invalid_arg "Store: segment_bytes must be at least 1024"

let is_store ?(io = Io.system) dir =
  io.Io.exists (Filename.concat dir catalog)
  || (io.Io.exists dir
      && List.exists
           (fun f -> parse_segment_file f <> None)
           (try io.Io.readdir dir with Io.Io_failure _ -> []))

let init ?(io = Io.system) ?(config = default_config) dir =
  validate_config config;
  io_guard @@ fun () ->
  io.Io.mkdir dir;
  if is_store ~io dir then
    raise (Fail (Io (dir ^ ": already holds a wolves store")));
  let t =
    { dir;
      io;
      config;
      shard_states =
        Array.init config.shards (fun shard ->
            { shard; segs = []; next_seq = 0; handle = None; dirty = false });
      next_lsn = 0;
      generation = 0;
      closed = false }
  in
  write_manifest t;
  t

let open_ ?(io = Io.system) dir =
  Obs.with_span "store.open" ~args:(fun () -> [ ("dir", dir) ])
  @@ fun () ->
  Obs.time t_open @@ fun () ->
  io_guard @@ fun () ->
  if not (io.Io.exists dir) then
    raise (Fail (Io (dir ^ ": no such directory")));
  let files = io.Io.readdir dir in
  (* Sweep catalog temporaries left by a crash mid-swap. *)
  let swept =
    List.filter
      (fun f ->
        String.length f > String.length catalog
        && String.sub f 0 (String.length catalog + 1) = catalog ^ ".")
      files
  in
  List.iter (fun f -> io.Io.remove (Filename.concat dir f)) swept;
  let seg_files = List.filter_map parse_segment_file files in
  let manifest =
    if io.Io.exists (Filename.concat dir catalog) then
      match parse_manifest (io.Io.read_file (Filename.concat dir catalog)) with
      | Ok m -> Some m
      | Error _ -> None
    else None
  in
  if manifest = None && seg_files = [] then raise (Fail (Not_a_store dir));
  let manifest_rebuilt = manifest = None in
  let config, generation =
    match manifest with
    | Some m ->
      ({ shards = m.m_shards; segment_bytes = m.m_segment_bytes },
       m.m_generation)
    | None ->
      (* Infer the shard count from the files. Routing new ids by an
         inferred count is harmless for reads (queries scan every shard);
         the rebuilt catalog makes the inference sticky. *)
      let max_shard =
        List.fold_left (fun acc (s, _) -> max acc s) 0 seg_files
      in
      ({ default_config with shards = max_shard + 1 }, 0)
  in
  (* The authoritative segment list is the union of catalog and directory:
     a crash can die after creating a segment but before the catalog swap
     records it. Both sides reduce to the parseable file names present on
     disk. *)
  let t =
    { dir;
      io;
      config;
      shard_states =
        Array.init config.shards (fun shard ->
            { shard; segs = []; next_seq = 0; handle = None; dirty = false });
      next_lsn = 0;
      generation;
      closed = false }
  in
  let recovery =
    Obs.time t_recovery @@ fun () ->
    let truncations = ref [] in
    let dropped = ref [] in
    let scanned = ref 0 in
    let recovered = ref 0 in
    Array.iter
      (fun st ->
        let mine =
          List.filter (fun (s, _) -> s = st.shard) seg_files
          |> List.sort compare
        in
        (* Each segment recovers independently. A crash can only tear the
           LAST segment of a shard — a fresh segment is created strictly
           after its predecessor is sealed and synced — so damage in an
           earlier segment means in-place corruption or an orphan file from
           a survived write error; the later segments hold acknowledged
           records and must be kept either way. *)
        List.iter
          (fun (_, seq) ->
            let file = segment_file st.shard seq in
            incr scanned;
            let content = io.Io.read_file (Filename.concat dir file) in
            let records, valid, status = scan_segment ~shard:st.shard content in
            let keep = ref true in
            (match status with
             | `Clean -> ()
             | `Torn (pos, _) | `Corrupt (pos, _) ->
               Obs.incr m_truncated;
               if valid = 0 || pos = 0 then begin
                 io.Io.remove (Filename.concat dir file);
                 dropped := file :: !dropped;
                 keep := false
               end
               else begin
                 io.Io.truncate (Filename.concat dir file) pos;
                 truncations :=
                   (file, pos, String.length content - pos) :: !truncations
               end);
            st.next_seq <- seq + 1;
            if !keep then begin
              st.segs <-
                st.segs
                @ [ { file;
                      seg_bytes = valid;
                      seg_records = List.length records } ];
              recovered := !recovered + List.length records;
              List.iter
                (fun r -> if r.lsn >= t.next_lsn then t.next_lsn <- r.lsn + 1)
                records
            end)
          mine)
      t.shard_states;
    Obs.add m_recovered !recovered;
    { segments_scanned = !scanned;
      records_recovered = !recovered;
      truncations = List.rev !truncations;
      dropped_segments = List.rev !dropped;
      swept_tmp = swept;
      manifest_rebuilt }
  in
  (* Re-establish the catalog only when recovery changed something: a clean
     reopen stays read-only. *)
  if
    recovery.manifest_rebuilt
    || recovery.truncations <> []
    || recovery.dropped_segments <> []
  then write_manifest t;
  (t, recovery)

(* --- appends ------------------------------------------------------------ *)

let check_open t = if t.closed then raise (Fail (Io "store is closed"))

let active_segment t st =
  match st.segs with
  | [] | _ :: _ when st.handle = None -> begin
    (* (Re)open the shard's tail for appending, rolling to a fresh segment
       when the tail is sealed (or absent). *)
    match List.rev st.segs with
    | last :: _ when last.seg_bytes < t.config.segment_bytes ->
      let h = t.io.Io.open_append (in_dir t last.file) in
      st.handle <- Some h;
      (last, h)
    | _ ->
      let file = segment_file st.shard st.next_seq in
      st.next_seq <- st.next_seq + 1;
      let h = t.io.Io.open_append (in_dir t file) in
      (try h.Io.write (segment_header st.shard)
       with e ->
         (try h.Io.close () with Io.Io_failure _ -> ());
         raise e);
      let seg = { file; seg_bytes = header_len; seg_records = 0 } in
      st.segs <- st.segs @ [ seg ];
      st.handle <- Some h;
      if List.length st.segs > 1 then Obs.incr m_seals;
      (* Make the new segment discoverable: the catalog swap is the point
         where the roll becomes part of the committed directory shape. *)
      write_manifest t;
      (seg, h)
  end
  | _ ->
    let last = List.hd (List.rev st.segs) in
    (last, Option.get st.handle)

let sync_shard st =
  match st.handle with
  | Some h when st.dirty ->
    h.Io.fsync ();
    Obs.incr m_fsyncs;
    st.dirty <- false
  | Some _ | None -> st.dirty <- false

let append t ?(sync = false) kind ~id value =
  Obs.time t_append @@ fun () ->
  io_guard @@ fun () ->
  check_open t;
  if String.length id > 0xFFFF then
    raise (Fail (Io "record id longer than 65535 bytes"));
  if String.length value > max_record_len - 11 - String.length id then
    raise (Fail (Io "record value too large"));
  let st = t.shard_states.(shard_of_id ~shards:t.config.shards id) in
  let seg, h =
    (* Rolling to a fresh segment happens *before* the append that would
       overflow, so segment sizes stay near the configured bound. *)
    let seg, h = active_segment t st in
    if
      seg.seg_bytes > header_len
      && seg.seg_bytes >= t.config.segment_bytes
    then begin
      sync_shard st;
      h.Io.close ();
      st.handle <- None;
      active_segment t st
    end
    else (seg, h)
  in
  let lsn = t.next_lsn in
  let bytes = encode_record ~kind ~lsn ~id ~value in
  (try h.Io.write bytes
   with Io.Io_failure _ as e ->
     (* Roll the torn append back so the segment stays a clean prefix; if
        even that fails the handle is poisoned and the store is closed. *)
     (try
        t.io.Io.truncate (in_dir t seg.file) seg.seg_bytes
      with Io.Io_failure _ -> t.closed <- true);
     raise e);
  t.next_lsn <- lsn + 1;
  seg.seg_bytes <- seg.seg_bytes + String.length bytes;
  seg.seg_records <- seg.seg_records + 1;
  st.dirty <- true;
  Obs.incr m_appends;
  Obs.add m_append_bytes (String.length bytes);
  if sync then sync_shard st

let sync t =
  io_guard @@ fun () ->
  check_open t;
  Array.iter (fun st -> sync_shard st) t.shard_states

let close t =
  io_guard @@ fun () ->
  if not t.closed then begin
    Array.iter
      (fun st ->
        sync_shard st;
        match st.handle with
        | Some h ->
          h.Io.close ();
          st.handle <- None
        | None -> ())
      t.shard_states;
    write_manifest t;
    t.closed <- true
  end

(* --- reads -------------------------------------------------------------- *)

let records t =
  io_guard @@ fun () ->
  let all = ref [] in
  Array.iter
    (fun st ->
      List.iter
        (fun seg ->
          let content = t.io.Io.read_file (in_dir t seg.file) in
          let records, _, status = scan_segment ~shard:st.shard content in
          (match status with
           | `Clean -> ()
           | `Torn (pos, reason) | `Corrupt (pos, reason) ->
             raise
               (Fail
                  (Corrupt
                     (Printf.sprintf "%s at offset %d: %s" seg.file pos reason))));
          all := List.rev_append records !all)
        st.segs)
    t.shard_states;
  List.sort (fun a b -> compare a.lsn b.lsn) !all

let latest t kind =
  match records t with
  | Error _ as e -> e
  | Ok rs ->
    let tbl = Hashtbl.create 64 in
    List.iter (fun r -> if r.kind = kind then Hashtbl.replace tbl r.id r) rs;
    Ok
      (List.sort
         (fun a b -> compare a.lsn b.lsn)
         (Hashtbl.fold (fun _ r acc -> r :: acc) tbl []))

type stats = {
  n_shards : int;
  n_segments : int;
  n_records : int;
  n_bytes : int;
  next_lsn : int;
  per_shard : (int * int * int * int) list;
}

let stats t =
  let per_shard =
    Array.to_list
      (Array.map
         (fun st ->
           ( st.shard,
             List.length st.segs,
             List.fold_left (fun acc s -> acc + s.seg_records) 0 st.segs,
             List.fold_left (fun acc s -> acc + s.seg_bytes) 0 st.segs ))
         t.shard_states)
  in
  { n_shards = t.config.shards;
    n_segments = List.fold_left (fun acc (_, s, _, _) -> acc + s) 0 per_shard;
    n_records = List.fold_left (fun acc (_, _, r, _) -> acc + r) 0 per_shard;
    n_bytes = List.fold_left (fun acc (_, _, _, b) -> acc + b) 0 per_shard;
    next_lsn = t.next_lsn;
    per_shard }

(* --- offline verification ----------------------------------------------- *)

type issue = {
  file : string;
  offset : int;
  torn : bool;
  reason : string;
}

type verify_report = {
  v_segments : int;
  v_records : int;
  v_bytes : int;
  issues : issue list;
}

let verify ?(io = Io.system) dir =
  io_guard @@ fun () ->
  if not (io.Io.exists dir) then
    raise (Fail (Io (dir ^ ": no such directory")));
  let files = io.Io.readdir dir in
  let seg_files = List.filter_map parse_segment_file files in
  let issues = ref [] in
  if io.Io.exists (Filename.concat dir catalog) then begin
    match parse_manifest (io.Io.read_file (Filename.concat dir catalog)) with
    | Ok _ -> ()
    | Error reason ->
      issues := [ { file = catalog; offset = 0; torn = false; reason } ]
  end
  else if seg_files = [] then raise (Fail (Not_a_store dir))
  else
    issues :=
      [ { file = catalog; offset = 0; torn = false; reason = "catalog missing" } ];
  let segments = ref 0 and total_records = ref 0 and bytes = ref 0 in
  List.iter
    (fun (shard, seq) ->
      let file = segment_file shard seq in
      incr segments;
      let content = io.Io.read_file (Filename.concat dir file) in
      bytes := !bytes + String.length content;
      let records, _, status = scan_segment ~shard content in
      total_records := !total_records + List.length records;
      match status with
      | `Clean -> ()
      | `Torn (offset, reason) ->
        issues := { file; offset; torn = true; reason } :: !issues
      | `Corrupt (offset, reason) ->
        issues := { file; offset; torn = false; reason } :: !issues)
    (List.sort compare seg_files);
  { v_segments = !segments;
    v_records = !total_records;
    v_bytes = !bytes;
    issues = List.rev !issues }
