(** A crash-safe, sharded, append-only provenance store.

    On disk a store directory holds:

    - per-shard {e segment} files ([shardNNN-SSSSSS.seg]): a 16-byte
      checksummed header followed by length-prefixed, CRC32C-checksummed
      records, appended only;
    - a {e catalog manifest} ([CATALOG]) listing the segments, swapped
      atomically (written under a temporary name, fsynced, renamed into
      place, directory fsynced).

    Records are acknowledged once written (and, with [~sync:true] or
    {!sync}, fsynced). Recovery on {!open_} re-scans every segment,
    truncates at the first torn or corrupt record, and replays the committed
    prefix — so a crash at {e any} byte offset reopens to a consistent
    store: everything acknowledged-durable survives, nothing corrupt is ever
    returned. The I/O layer is pluggable ({!Storage_io}); the fault-injecting
    implementation drives the crash-matrix property tests.

    Writes from one store handle are not thread-safe; concurrent readers of
    a closed store (via {!verify} / a second {!open_}) are fine. *)

type error =
  | Io of string          (** the I/O layer failed (survivable) *)
  | Corrupt of string     (** on-disk state failed validation *)
  | Not_a_store of string (** directory exists but holds no catalog/segments *)

val pp_error : Format.formatter -> error -> unit

(** What a record holds. The store is a generic durable log keyed by
    [(kind, id)]; later records with the same key supersede earlier ones. *)
type kind =
  | Workflow    (** a serialised (specification, view) document *)
  | Checkpoint  (** an engine execution trace (resume checkpoint) *)

val kind_name : kind -> string

type record = {
  kind : kind;
  id : string;
  lsn : int;     (** log sequence number: global append order *)
  value : string;
}

type config = {
  shards : int;         (** segment files are spread over this many shards
                            (1–256); ids are routed by hash *)
  segment_bytes : int;  (** roll to a fresh segment past this size *)
}

val default_config : config
(** 4 shards, 4 MiB segments. *)

type t

(** What {!open_} found and repaired. *)
type recovery = {
  segments_scanned : int;
  records_recovered : int;
  truncations : (string * int * int) list;
      (** segment file, surviving prefix bytes, bytes dropped — one entry
          per torn or corrupt tail cut off *)
  dropped_segments : string list;
      (** segments discarded whole: an unreadable or torn header with no
          committed records behind it (e.g. the orphan file of a failed
          segment-header write) *)
  swept_tmp : string list;
      (** stale catalog temporaries removed *)
  manifest_rebuilt : bool;
      (** the catalog was missing or corrupt; state was rebuilt by
          directory scan *)
}

val init :
  ?io:Storage_io.t -> ?config:config -> string -> (t, error) result
(** Create an empty store (the directory is created if missing). Fails if
    the directory already holds a store. *)

val open_ : ?io:Storage_io.t -> string -> (t * recovery, error) result
(** Open an existing store, running recovery (see {!recovery}). *)

val append :
  t -> ?sync:bool -> kind -> id:string -> string -> (unit, error) result
(** Append one record. With [~sync:true] (default [false]) the shard's
    segment is fsynced before returning — the record is then {e committed}:
    recovery after any later crash replays it. Unsynced appends are
    committed by the next {!sync} or {!close}. A failed write is rolled
    back (the segment is truncated to its pre-append length), so a
    survivable I/O error leaves the store consistent and usable. *)

val sync : t -> (unit, error) result
(** Fsync every shard with unsynced appends. *)

val close : t -> (unit, error) result
(** Sync, write the catalog, and close all handles. Idempotent. *)

val records : t -> (record list, error) result
(** Every record, re-read and re-verified from disk, in log order
    (ascending [lsn]). *)

val latest : t -> kind -> (record list, error) result
(** The newest record per id of that kind, in log order. *)

type stats = {
  n_shards : int;
  n_segments : int;
  n_records : int;
  n_bytes : int;       (** total segment bytes, headers included *)
  next_lsn : int;
  per_shard : (int * int * int * int) list;
      (** shard, segments, records, bytes *)
}

val stats : t -> stats

(* --- offline verification --- *)

type issue = {
  file : string;
  offset : int;
  torn : bool;  (** ran off end-of-file (crash tail) rather than failing a
                    checksum in place (corruption / bit flip) *)
  reason : string;
}

type verify_report = {
  v_segments : int;
  v_records : int;
  v_bytes : int;
  issues : issue list;
}

val verify : ?io:Storage_io.t -> string -> (verify_report, error) result
(** Read-only scan of every segment and the catalog: every record's
    checksum is recomputed; nothing is repaired. A store that verifies
    clean has zero [issues]. *)

val shard_of_id : shards:int -> string -> int
(** The shard an id routes to (exposed for tests and stats). *)

val is_store : ?io:Storage_io.t -> string -> bool
(** The directory holds a catalog (or at least one segment). *)
