module Json = Wolves_cli.Json

type format = Chrome | Jsonl | Folded

let format_of_path path =
  if Filename.check_suffix path ".jsonl" then Jsonl
  else if Filename.check_suffix path ".folded" then Folded
  else Chrome

let category name =
  match String.index_opt name '.' with
  | Some i when i > 0 -> String.sub name 0 i
  | _ -> "wolves"

let args_json args =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)

(* Microseconds relative to the first event, so Perfetto's timeline starts
   at zero instead of at an arbitrary monotonic-clock offset. *)
let us_of ~t0 ts = (ts -. t0) *. 1e6

let to_chrome_json evs =
  let t0 = match evs with [] -> 0. | ev :: _ -> ev.Trace.ts in
  let base name ph ts extra =
    Json.Obj
      ([ ("name", Json.String name);
         ("cat", Json.String (category name));
         ("ph", Json.String ph);
         ("ts", Json.Float (us_of ~t0 ts));
         ("pid", Json.Int 1);
         ("tid", Json.Int 1) ]
      @ extra)
  in
  let out = ref [] in
  let emit j = out := j :: !out in
  let stack = ref [] in
  let last_ts = ref t0 in
  List.iter
    (fun (ev : Trace.event) ->
      last_ts := ev.ts;
      match ev.phase with
      | Trace.Begin ->
        stack := (ev.name, ev.ts) :: !stack;
        emit (base ev.name "B" ev.ts [ ("args", args_json ev.args) ])
      | Trace.End -> (
        match !stack with
        | (name, begin_ts) :: rest when name = ev.name ->
          stack := rest;
          let dur = Float.max 0. (us_of ~t0 ev.ts -. us_of ~t0 begin_ts) in
          emit (base ev.name "E" ev.ts [ ("dur", Json.Float dur) ])
        | _ ->
          (* Begin fell off the ring; emitting this End would unbalance the
             document, so drop it. *)
          ())
      | Trace.Instant ->
        emit
          (base ev.name "i" ev.ts
             [ ("s", Json.String "t"); ("args", args_json ev.args) ]))
    evs;
  (* Close spans still open when the trace stopped, innermost first. *)
  List.iter
    (fun (name, begin_ts) ->
      let dur = Float.max 0. (us_of ~t0 !last_ts -. us_of ~t0 begin_ts) in
      emit (base name "E" !last_ts [ ("dur", Json.Float dur) ]))
    !stack;
  Json.Obj [ ("traceEvents", Json.List (List.rev !out)) ]

let to_jsonl evs =
  let buf = Buffer.create 4096 in
  let t0 = match evs with [] -> 0. | ev :: _ -> ev.Trace.ts in
  List.iter
    (fun (ev : Trace.event) ->
      let ph =
        match ev.phase with
        | Trace.Begin -> "B"
        | Trace.End -> "E"
        | Trace.Instant -> "i"
      in
      let j =
        Json.Obj
          [ ("ph", Json.String ph);
            ("name", Json.String ev.name);
            ("ts_us", Json.Float (us_of ~t0 ev.ts));
            ("args", args_json ev.args) ]
      in
      Buffer.add_string buf (Json.to_string ~pretty:false j);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let to_folded evs =
  let spans, _orphans = Trace.spans evs in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      let key = String.concat ";" s.stack in
      let prev = Option.value (Hashtbl.find_opt tbl key) ~default:0. in
      Hashtbl.replace tbl key (prev +. s.self_s))
    spans;
  let lines =
    Hashtbl.fold (fun key self acc -> (key, self) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (key, self) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" key
           (int_of_float (Float.round (self *. 1e6)))))
    lines;
  Buffer.contents buf

let write fmt evs path =
  let contents =
    match fmt with
    | Chrome -> Json.to_string ~pretty:false (to_chrome_json evs) ^ "\n"
    | Jsonl -> to_jsonl evs
    | Folded -> to_folded evs
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
