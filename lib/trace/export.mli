(** Exporters for collected traces.

    Three formats, picked by {!format_of_path} from the output filename:
    - [.json] — Chrome trace-event JSON ([{"traceEvents": [...]}]), loadable
      in Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and
      [chrome://tracing];
    - [.jsonl] — one JSON object per line, for [jq]-style processing;
    - [.folded] — collapsed stacks ([a;b;c <self-µs>]) for
      [flamegraph.pl] / [inferno]. *)

type format = Chrome | Jsonl | Folded

val format_of_path : string -> format
(** [.jsonl] → [Jsonl], [.folded] → [Folded], anything else → [Chrome]. *)

val to_chrome_json : Trace.event list -> Wolves_cli.Json.t
(** The trace-event document: begin/end spans as ["B"]/["E"] pairs and
    instants as ["i"] (thread-scoped), with microsecond timestamps relative
    to the first event, [pid]/[tid] of 1, args carried through, and — as an
    extension Perfetto ignores — the span duration in µs as ["dur"] on each
    ["E"] event. End events whose Begin fell off the ring are skipped;
    spans still open at the end of the stream are closed at the last
    timestamp, so the document always balances. *)

val to_jsonl : Trace.event list -> string
(** One compact JSON object per event:
    [{"ph": "B"|"E"|"i", "name": .., "ts_us": .., "args": {..}}]. *)

val to_folded : Trace.event list -> string
(** Collapsed stacks, one line per distinct span path:
    [root;child;leaf <total-self-µs>], merging repeated paths. *)

val write : format -> Trace.event list -> string -> unit
(** Render to the given file. *)
