module Json = Wolves_cli.Json

type row = {
  path : string;
  count : int;
  total_s : float;
  self_s : float;
  max_s : float;
}

type t = {
  rows : row list;
  wall_s : float;
  events : int;
  orphans : int;
  instants : (string * int) list;
}

let of_events evs =
  let spans, orphans = Trace.spans evs in
  let tbl : (string, row) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      let path = String.concat "/" s.stack in
      let dur = s.end_ts -. s.begin_ts in
      let row =
        match Hashtbl.find_opt tbl path with
        | None ->
          { path; count = 1; total_s = dur; self_s = s.self_s; max_s = dur }
        | Some r ->
          {
            r with
            count = r.count + 1;
            total_s = r.total_s +. dur;
            self_s = r.self_s +. s.self_s;
            max_s = Float.max r.max_s dur;
          }
      in
      Hashtbl.replace tbl path row)
    spans;
  let rows =
    Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
    |> List.sort (fun a b -> String.compare a.path b.path)
  in
  let wall_s =
    match evs with
    | [] -> 0.
    | first :: _ ->
      let last = List.fold_left (fun _ (ev : Trace.event) -> ev.ts) first.Trace.ts evs in
      Float.max 0. (last -. first.Trace.ts)
  in
  let instants =
    let counts = Hashtbl.create 16 in
    List.iter
      (fun (ev : Trace.event) ->
        if ev.phase = Trace.Instant then
          Hashtbl.replace counts ev.name
            (1 + Option.value (Hashtbl.find_opt counts ev.name) ~default:0))
      evs;
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { rows; wall_s; events = List.length evs; orphans; instants }

let ranked ~key ?(k = 10) t =
  List.stable_sort (fun a b -> Float.compare (key b) (key a)) t.rows
  |> List.filteri (fun i _ -> i < k)

let top_self ?k t = ranked ~key:(fun r -> r.self_s) ?k t
let top_total ?k t = ranked ~key:(fun r -> r.total_s) ?k t

let phases t =
  List.filter (fun r -> not (String.contains r.path '/')) t.rows

(* --- loading exported traces ------------------------------------------- *)

let phase_of_string = function
  | "B" -> Some Trace.Begin
  | "E" -> Some Trace.End
  | "i" | "I" -> Some Trace.Instant
  | _ -> None

let args_of_json = function
  | Some (Json.Obj fields) ->
    List.filter_map
      (fun (k, v) ->
        match v with Json.String s -> Some (k, s) | _ -> None)
      fields
  | _ -> []

let event_of_json ~ts_key j =
  match (Json.member "ph" j, Json.member "name" j, Json.member ts_key j) with
  | Some (Json.String ph), Some (Json.String name), Some ts -> (
    match (phase_of_string ph, Json.to_float_opt ts) with
    | Some phase, Some us ->
      Some { Trace.phase; name; ts = us /. 1e6; args = args_of_json (Json.member "args" j) }
    | _ -> None)
  | _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
    if Filename.check_suffix path ".jsonl" then begin
      let evs =
        String.split_on_char '\n' text
        |> List.filter (fun l -> String.trim l <> "")
        |> List.filter_map (fun line ->
               match Json.of_string line with
               | Ok j -> event_of_json ~ts_key:"ts_us" j
               | Error _ -> None)
      in
      Ok evs
    end
    else
      match Json.of_string text with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok j -> (
        match Json.member "traceEvents" j with
        | Some (Json.List items) ->
          Ok (List.filter_map (event_of_json ~ts_key:"ts") items)
        | _ -> Error (Printf.sprintf "%s: no traceEvents array" path))
