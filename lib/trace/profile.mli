(** In-process profile reports over a collected (or re-loaded) trace. *)

type row = {
  path : string;  (** [/]-joined span path, e.g. [corrector.correct/soundness.validate] *)
  count : int;
  total_s : float;  (** summed wall time of spans at this path *)
  self_s : float;  (** total minus time in directly nested spans *)
  max_s : float;  (** longest single span *)
}

type t = {
  rows : row list;  (** every distinct path, sorted by path *)
  wall_s : float;  (** last event timestamp minus first *)
  events : int;
  orphans : int;  (** End events whose Begin was evicted by the ring *)
  instants : (string * int) list;  (** instant-event counts by name *)
}

val of_events : Trace.event list -> t

val top_self : ?k:int -> t -> row list
(** Rows ranked by self time, largest first (default 10). *)

val top_total : ?k:int -> t -> row list

val phases : t -> row list
(** Depth-0 rows only (paths with no [/]) in path order — the per-phase
    breakdown. *)

val load : string -> (Trace.event list, string) result
(** Re-read an exported trace: Chrome trace-event JSON ([.json]) or JSONL
    ([.jsonl]). Timestamps come back in seconds relative to the start of
    the trace; collapsed-stack files are not loadable (they aggregate). *)
