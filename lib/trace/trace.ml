module Metrics = Wolves_obs.Metrics
module Clock = Wolves_obs.Clock

type phase = Begin | End | Instant

type event = {
  phase : phase;
  name : string;
  ts : float;
  args : (string * string) list;
}

type t = {
  buf : event option array;
  cap : int;
  mutable head : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable evicted : int;
  lock : Mutex.t;
}

let m_dropped = Metrics.counter "trace.dropped"
let m_events = Metrics.counter "trace.events"

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { buf = Array.make capacity None;
    cap = capacity;
    head = 0;
    len = 0;
    evicted = 0;
    lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = t.len
let capacity t = t.cap
let dropped t = t.evicted

let push t ev =
  Metrics.incr m_events;
  if t.len < t.cap then begin
    t.buf.((t.head + t.len) mod t.cap) <- Some ev;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest slot and advance the window. Because the
       ring always evicts from the front, the retained events remain a
       contiguous suffix of the stream — which is what lets exporters
       safely skip End events whose Begin was dropped. *)
    t.buf.(t.head) <- Some ev;
    t.head <- (t.head + 1) mod t.cap;
    t.evicted <- t.evicted + 1;
    Metrics.incr m_dropped
  end

let record t phase name args =
  let ev = { phase; name; ts = Clock.now (); args } in
  locked t (fun () -> push t ev)

let record_event t ev = locked t (fun () -> push t ev)

let record_all t evs = locked t (fun () -> List.iter (push t) evs)

let events_unlocked t =
  List.init t.len (fun i ->
      match t.buf.((t.head + i) mod t.cap) with
      | Some ev -> ev
      | None -> assert false)

let events t = locked t (fun () -> events_unlocked t)

let clear_unlocked t =
  Array.fill t.buf 0 t.cap None;
  t.head <- 0;
  t.len <- 0;
  t.evicted <- 0

let clear t = locked t (fun () -> clear_unlocked t)

let drain t =
  locked t (fun () ->
      let evs = events_unlocked t in
      clear_unlocked t;
      evs)

(* This collector keeps every event, so the annotation thunk is forced
   right away (exactly once). *)
let tracer t =
  {
    Metrics.on_begin = (fun name args -> record t Begin name (args ()));
    on_end = (fun name -> record t End name []);
    on_instant = (fun name args -> record t Instant name (args ()));
  }

let install t = Metrics.set_tracer (Some (tracer t))
let uninstall () = Metrics.set_tracer None
let with_tracing t f = Metrics.with_tracer (tracer t) f

(* --- span reconstruction ------------------------------------------------ *)

type span = {
  stack : string list;
  begin_ts : float;
  end_ts : float;
  self_s : float;
  args : (string * string) list;
}

type open_frame = {
  f_name : string;
  f_begin : float;
  f_args : (string * string) list;
  mutable f_child : float;  (* summed duration of directly nested spans *)
}

let spans evs =
  let out = ref [] in
  let stack = ref [] in
  let orphans = ref 0 in
  let last_ts = ref nan in
  let close frame end_ts =
    let outermost_first =
      List.rev_map (fun f -> f.f_name) (frame :: !stack)
    in
    let dur = Float.max 0. (end_ts -. frame.f_begin) in
    (match !stack with
     | parent :: _ -> parent.f_child <- parent.f_child +. dur
     | [] -> ());
    out :=
      {
        stack = outermost_first;
        begin_ts = frame.f_begin;
        end_ts;
        self_s = Float.max 0. (dur -. frame.f_child);
        args = frame.f_args;
      }
      :: !out
  in
  List.iter
    (fun ev ->
      last_ts := ev.ts;
      match ev.phase with
      | Instant -> ()
      | Begin ->
        stack :=
          { f_name = ev.name; f_begin = ev.ts; f_args = ev.args; f_child = 0. }
          :: !stack
      | End -> (
        match !stack with
        | frame :: rest when frame.f_name = ev.name ->
          stack := rest;
          close frame ev.ts
        | _ ->
          (* An End with no matching open Begin: its Begin predates the
             retained window (ring overflow). Skip it. *)
          incr orphans))
    evs;
  (* Close any span still open at the end of the stream at the last seen
     timestamp, so a trace cut mid-run still renders. *)
  let rec drain () =
    match !stack with
    | [] -> ()
    | frame :: rest ->
      stack := rest;
      close frame !last_ts;
      drain ()
  in
  if not (Float.is_nan !last_ts) then drain ();
  (List.rev !out, !orphans)
