(** Wolves_trace: a bounded ring-buffer trace collector.

    Aggregate metrics ({!Wolves_obs.Metrics} counters and histograms)
    answer "how much, overall?"; this module answers "where did {e this}
    run spend its time?". A collector records begin/end span events and
    instant events — with structured args — emitted by every region already
    instrumented through [Metrics.time] / [Metrics.with_span], by
    installing itself as the registry's {!Wolves_obs.Metrics.tracer}. No
    new call sites are needed in the hot paths, and an uninstalled tracer
    costs those paths the same single load-and-branch as disabled metrics.

    The buffer is bounded: once full, recording a new event drops the
    {e oldest} one (and counts the drop, both locally and in the
    [trace.dropped] registry counter), so tracing a long run keeps the most
    recent window instead of failing or growing without bound.

    {b Domain safety.} Every ring operation — record, read, clear, drain —
    takes an internal per-collector lock, so server worker domains can
    flush sampled request spans into one shared ring while another
    connection drains it. ({!length} and {!dropped} read single fields
    without the lock; treat them as monitoring hints under concurrency.)

    Exporters live in {!Export} (Chrome trace-event JSON for
    Perfetto / [chrome://tracing], JSONL, collapsed stacks for flamegraphs)
    and {!Profile} (in-process top-k self/total-time reports). *)

type phase =
  | Begin  (** a timed region opened *)
  | End  (** the matching region closed *)
  | Instant  (** a point event *)

type event = {
  phase : phase;
  name : string;
  ts : float;
      (** monotonic seconds ({!Wolves_obs.Clock} epoch; only differences
          are meaningful) *)
  args : (string * string) list;
}

type t

val create : ?capacity:int -> unit -> t
(** A fresh collector holding at most [capacity] events (default 65536).
    @raise Invalid_argument when [capacity < 1]. *)

val record : t -> phase -> string -> (string * string) list -> unit
(** Append one event, stamped with the monotonic clock now. When the
    buffer is full the oldest event is dropped. *)

val record_event : t -> event -> unit
(** Append one already-stamped event — for buffered producers (the server's
    per-request samplers) that stamp events as they happen but only commit
    them to the shared ring at request end. *)

val record_all : t -> event list -> unit
(** Append a batch of already-stamped events atomically: no event from
    another domain interleaves inside the batch, so a sampled request's
    spans stay contiguous in the ring and always reconstruct as one
    balanced tree. *)

val length : t -> int
val capacity : t -> int

val dropped : t -> int
(** Events evicted by ring overflow since creation (or the last
    {!clear}). *)

val events : t -> event list
(** The retained events, oldest first. *)

val clear : t -> unit

val drain : t -> event list
(** Atomically take the retained events (oldest first) and {!clear} the
    ring — the [TRACE] protocol verb: concurrent recorders land either
    before the drain (and are returned) or after (and are retained), never
    lost. *)

val tracer : t -> Wolves_obs.Metrics.tracer
(** The collector as a metrics-registry tracer. *)

val install : t -> unit
(** [Metrics.set_tracer (Some (tracer t))]. *)

val uninstall : unit -> unit
(** Remove whatever tracer is installed. *)

val with_tracing : t -> (unit -> 'a) -> 'a
(** Run a thunk with the collector installed as the registry tracer,
    restoring the previously installed tracer afterwards (also on
    exceptions). *)

(* --- span reconstruction (shared by exporters and profiling) --- *)

type span = {
  stack : string list;
      (** enclosing span names, outermost first, ending with this span *)
  begin_ts : float;
  end_ts : float;
  self_s : float;
      (** duration minus the duration of directly nested spans *)
  args : (string * string) list;
}

val spans : event list -> span list * int
(** Match begin/end pairs into completed spans (in end order) by a stack
    walk. The second component counts unmatched [End] events — ends whose
    [Begin] was evicted by ring overflow; they are skipped. A [Begin] still
    open at the end of the event list is closed at the last timestamp. *)
