module Digraph = Wolves_graph.Digraph
module Algo = Wolves_graph.Algo
module Reach = Wolves_graph.Reach
module Labels = Wolves_graph.Labels

type task = int

type t = {
  name : string;
  graph : Digraph.t;
  task_names : string array;
  by_name : (string, task) Hashtbl.t;
  topo : task list;
  attributes : (task * string, string) Hashtbl.t;
  annots : (task, (task * task list) list) Hashtbl.t;
      (* task -> dependency annotation entries, declaration order: each
         entry names an output (by consumer task) and the inputs (by
         producer task) that output depends on. Entries are stored loosely —
         names resolve to declared tasks but need not be graph neighbours,
         so the static analyses can diagnose inconsistencies instead of
         construction rejecting them. *)
  mutable closure : Reach.t option; (* computed on first use *)
  mutable label_index : Labels.t option; (* computed on first use *)
}

type error =
  | Duplicate_task of string
  | Unknown_task of string
  | Self_dependency of string
  | Cyclic of string list

let pp_error ppf = function
  | Duplicate_task n -> Format.fprintf ppf "duplicate task %S" n
  | Unknown_task n -> Format.fprintf ppf "unknown task %S" n
  | Self_dependency n -> Format.fprintf ppf "task %S depends on itself" n
  | Cyclic names ->
    Format.fprintf ppf "dependency cycle: %s" (String.concat " -> " names)

exception Spec_error of error

let ok_exn = function Ok v -> v | Error e -> raise (Spec_error e)

module Builder = struct

  type t = {
    b_name : string;
    b_graph : Digraph.t;
    mutable b_task_names : string list; (* reversed *)
    b_by_name : (string, task) Hashtbl.t;
    b_attrs : (task * string, string) Hashtbl.t;
    b_annots : (task, (task * task list) list) Hashtbl.t;
  }

  let create ?(name = "workflow") () =
    { b_name = name;
      b_graph = Digraph.create ();
      b_task_names = [];
      b_by_name = Hashtbl.create 64;
      b_attrs = Hashtbl.create 16;
      b_annots = Hashtbl.create 16 }

  let add_task b name =
    if Hashtbl.mem b.b_by_name name then Error (Duplicate_task name)
    else begin
      let id = Digraph.add_node b.b_graph in
      Hashtbl.add b.b_by_name name id;
      b.b_task_names <- name :: b.b_task_names;
      Ok id
    end

  let add_task_exn b name = ok_exn (add_task b name)

  let lookup b name =
    match Hashtbl.find_opt b.b_by_name name with
    | Some id -> Ok id
    | None -> Error (Unknown_task name)

  let set_attr b task_name ~key value =
    match lookup b task_name with
    | Error _ as e -> e
    | Ok task ->
      Hashtbl.replace b.b_attrs (task, key) value;
      Ok ()

  let set_attr_exn b task_name ~key value = ok_exn (set_attr b task_name ~key value)

  let add_dependency b producer consumer =
    match (lookup b producer, lookup b consumer) with
    | Error e, _ | _, Error e -> Error e
    | Ok u, Ok v ->
      if u = v then Error (Self_dependency producer)
      else begin
        Digraph.add_edge b.b_graph u v;
        Ok ()
      end

  let add_dependency_exn b producer consumer =
    ok_exn (add_dependency b producer consumer)

  let annotate b task_name ~output inputs =
    (* Names must be declared; being actual graph neighbours is a lint
       concern, not a construction one (see the [annots] field comment). *)
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest ->
        (match lookup b name with
         | Error _ as e -> e
         | Ok id -> resolve (id :: acc) rest)
    in
    match (lookup b task_name, lookup b output, resolve [] inputs) with
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
    | Ok task, Ok out, Ok ins ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt b.b_annots task)
      in
      Hashtbl.replace b.b_annots task (existing @ [ (out, ins) ]);
      Ok ()

  let annotate_exn b task_name ~output inputs =
    ok_exn (annotate b task_name ~output inputs)

  let finish b =
    let graph = Digraph.copy b.b_graph in
    let task_names = Array.of_list (List.rev b.b_task_names) in
    match Algo.topological_sort graph with
    | Some topo ->
      Ok { name = b.b_name;
           graph;
           task_names;
           by_name = Hashtbl.copy b.b_by_name;
           topo;
           attributes = Hashtbl.copy b.b_attrs;
           annots = Hashtbl.copy b.b_annots;
           closure = None;
           label_index = None }
    | None ->
      let cycle =
        match Algo.find_cycle graph with
        | Some nodes -> List.map (fun v -> task_names.(v)) nodes
        | None -> assert false
      in
      Error (Cyclic cycle)

  let finish_exn b = ok_exn (finish b)
end

let of_tasks ~name task_list deps =
  let b = Builder.create ~name () in
  let rec add_all add = function
    | [] -> Ok ()
    | x :: rest ->
      (match add x with Error e -> Error e | Ok _ -> add_all add rest)
  in
  match add_all (Builder.add_task b) task_list with
  | Error e -> Error e
  | Ok () ->
    (match add_all (fun (p, c) -> Builder.add_dependency b p c) deps with
     | Error e -> Error e
     | Ok () -> Builder.finish b)

let of_tasks_exn ~name task_list deps = ok_exn (of_tasks ~name task_list deps)

let name spec = spec.name

let n_tasks spec = Digraph.n_nodes spec.graph

let n_dependencies spec = Digraph.n_edges spec.graph

let task_name spec t =
  if t < 0 || t >= Array.length spec.task_names then
    invalid_arg (Printf.sprintf "Spec.task_name: unknown task %d" t);
  spec.task_names.(t)

let task_of_name spec n = Hashtbl.find_opt spec.by_name n

let task_of_name_exn spec n =
  match task_of_name spec n with
  | Some t -> t
  | None -> raise (Spec_error (Unknown_task n))

let tasks spec = List.init (n_tasks spec) Fun.id

let graph spec = spec.graph

let producers spec t = Digraph.pred spec.graph t

let consumers spec t = Digraph.succ spec.graph t

let attr spec t key = Hashtbl.find_opt spec.attributes (t, key)

let attrs spec t =
  Hashtbl.fold
    (fun (task, key) value acc -> if task = t then (key, value) :: acc else acc)
    spec.attributes []
  |> List.sort compare

let float_attr spec t key = Option.bind (attr spec t key) float_of_string_opt

let reach spec =
  match spec.closure with
  | Some r -> r
  | None ->
    let r = Reach.compute spec.graph in
    spec.closure <- Some r;
    r

let depends spec u v = Reach.reaches (reach spec) u v

let labels spec =
  match spec.label_index with
  | Some l -> l
  | None ->
    let l = Labels.compute spec.graph in
    spec.label_index <- Some l;
    l

let annotation spec t =
  if t < 0 || t >= n_tasks spec then
    invalid_arg (Printf.sprintf "Spec.annotation: unknown task %d" t);
  Hashtbl.find_opt spec.annots t

let annotated_tasks spec =
  List.filter (fun t -> Hashtbl.mem spec.annots t) (tasks spec)

let has_annotations spec = Hashtbl.length spec.annots > 0

let topological_order spec = spec.topo

let pp ppf spec =
  Format.fprintf ppf "workflow %S (%d tasks, %d dependencies)" spec.name
    (n_tasks spec) (n_dependencies spec)
