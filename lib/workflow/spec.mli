(** Workflow specifications: named atomic tasks and data dependencies.

    A specification is an immutable DAG built through {!Builder}. Tasks are
    identified externally by unique names and internally by dense integers
    [0 .. n_tasks - 1] (allocation order), which index directly into the graph
    substrate. *)

type task = int
(** Internal task identifier. *)

type t

type error =
  | Duplicate_task of string
  | Unknown_task of string
  | Self_dependency of string
  | Cyclic of string list
      (** Tasks forming a dependency cycle, in cycle order. *)

val pp_error : Format.formatter -> error -> unit

exception Spec_error of error
(** Raised by the [_exn] conveniences. *)

(** Incremental construction of a specification. *)
module Builder : sig
  type spec := t

  type t

  val create : ?name:string -> unit -> t
  (** A builder for a workflow called [name] (default ["workflow"]). *)

  val add_task : t -> string -> (task, error) result
  (** Declare a task. Fails with [Duplicate_task] on a reused name. *)

  val add_task_exn : t -> string -> task

  val set_attr : t -> string -> key:string -> string -> (unit, error) result
  (** Attach (or overwrite) a metadata attribute on a declared task —
      durations, memory hints, actor classes... Attributes are carried
      through every serialisation format. Fails with [Unknown_task]. *)

  val set_attr_exn : t -> string -> key:string -> string -> unit

  val add_dependency : t -> string -> string -> (unit, error) result
  (** [add_dependency b producer consumer] records the dataflow edge
      [producer -> consumer]; idempotent. Fails with [Unknown_task] or
      [Self_dependency]. *)

  val add_dependency_exn : t -> string -> string -> unit

  val annotate :
    t -> string -> output:string -> string list -> (unit, error) result
  (** [annotate b task ~output inputs] records one dependency-annotation
      entry on [task]: the data it sends to [output] (an output channel,
      named by its consumer task) depends on exactly the data received from
      [inputs] (input channels, named by producer tasks). An empty [inputs]
      list means the output is generated from none of the task's inputs.
      Entries accumulate in declaration order, duplicates included.

      All names must be declared tasks ([Unknown_task] otherwise), but
      {e neighbourliness is deliberately not enforced}: an entry may name a
      non-consumer output or non-producer input, which the analysis layer
      reports as [spec/annotation-inconsistent] instead of construction
      failing. Tasks carrying no entry for some output are treated by the
      analyses as depending on {e all} inputs (the safe default). *)

  val annotate_exn : t -> string -> output:string -> string list -> unit

  val finish : t -> (spec, error) result
  (** Freeze the builder. Fails with [Cyclic] when the dependencies contain a
      cycle. The builder may keep being extended afterwards; the frozen
      specification is unaffected. *)

  val finish_exn : t -> spec
end

val of_tasks :
  name:string -> string list -> (string * string) list -> (t, error) result
(** [of_tasks ~name tasks deps] builds a specification in one call; [deps]
    are (producer, consumer) name pairs. *)

val of_tasks_exn :
  name:string -> string list -> (string * string) list -> t

val name : t -> string

val n_tasks : t -> int

val n_dependencies : t -> int

val task_name : t -> task -> string
(** @raise Invalid_argument on an out-of-range identifier. *)

val task_of_name : t -> string -> task option

val task_of_name_exn : t -> string -> task
(** @raise Error ([Unknown_task]) when absent. *)

val tasks : t -> task list
(** All task identifiers, increasing. *)

val graph : t -> Wolves_graph.Digraph.t
(** The dependency graph (do not mutate: shared with the specification). *)

val producers : t -> task -> task list
(** Direct predecessors. *)

val consumers : t -> task -> task list
(** Direct successors. *)

val attr : t -> task -> string -> string option
(** A task's metadata attribute, if set. *)

val attrs : t -> task -> (string * string) list
(** All attributes of a task, sorted by key. *)

val float_attr : t -> task -> string -> float option
(** [attr] parsed as a float ([None] when missing or unparseable). *)

val reach : t -> Wolves_graph.Reach.t
(** The reflexive–transitive closure of the dependency graph, computed once
    and cached. *)

val depends : t -> task -> task -> bool
(** [depends spec upstream downstream]: is there a (possibly empty)
    dependency path? *)

val labels : t -> Wolves_graph.Labels.t
(** The compact reachability-label index ({!Wolves_graph.Labels}) of the
    dependency graph, computed once and cached — the backend behind
    [Soundness.validate ~engine:`Labels]. *)

val annotation : t -> task -> (task * task list) list option
(** A task's dependency-annotation entries (output consumer, input
    producers), in declaration order — [None] when the task carries no
    annotation at all (distinct from [Some []]). See {!Builder.annotate}
    for the semantics. *)

val annotated_tasks : t -> task list
(** Tasks carrying at least one annotation entry, increasing id order. *)

val has_annotations : t -> bool

val topological_order : t -> task list

val pp : Format.formatter -> t -> unit
(** One-line summary: name, task and edge counts. *)
