(* The dataflow framework, the reachability label index, and the
   annotation analyses: labels must agree with the dense closure on every
   generator family (and through Soundness at every domain count), the
   fine-grained flow must refine coarse reachability, and annotation
   inference must be an idempotent fixpoint. *)

module Digraph = Wolves_graph.Digraph
module Bitset = Wolves_graph.Bitset
module Reach = Wolves_graph.Reach
module Labels = Wolves_graph.Labels
open Wolves_workflow
module S = Wolves_core.Soundness
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views
module Dataflow = Wolves_analysis.Dataflow
module Flow = Wolves_analysis.Flow
module Annot = Wolves_analysis.Annot

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Deterministic inline PRNG for annotation sprinkling. *)
let mk_rng seed =
  let state = ref (seed * 2654435761 + 12345) in
  fun bound ->
    state := (!state * 1103515245) + 12345;
    (!state lsr 17) mod bound

let spec_of ?(annots = []) tasks edges =
  let b = Spec.Builder.create ~name:"test" () in
  List.iter (fun t -> ignore (Spec.Builder.add_task_exn b t)) tasks;
  List.iter (fun (p, c) -> Spec.Builder.add_dependency_exn b p c) edges;
  List.iter
    (fun (t, output, ins) -> Spec.Builder.annotate_exn b t ~output ins)
    annots;
  Spec.Builder.finish_exn b

(* Rebuild a spec with extra annotation entries appended — how tests apply
   an inference result as if the user accepted the fix. *)
let apply_inferred spec (result : Annot.result) =
  let b = Spec.Builder.create ~name:(Spec.name spec) () in
  List.iter
    (fun t -> ignore (Spec.Builder.add_task_exn b (Spec.task_name spec t)))
    (Spec.tasks spec);
  Digraph.iter_edges
    (fun u v ->
      Spec.Builder.add_dependency_exn b (Spec.task_name spec u)
        (Spec.task_name spec v))
    (Spec.graph spec);
  List.iter
    (fun t ->
      List.iter
        (fun (o, ins) ->
          Spec.Builder.annotate_exn b (Spec.task_name spec t)
            ~output:(Spec.task_name spec o)
            (List.map (Spec.task_name spec) ins))
        (Option.value ~default:[] (Spec.annotation spec t)))
    (Spec.tasks spec);
  List.iter
    (fun { Annot.inf_task; inf_entries } ->
      List.iter
        (fun (o, ins) ->
          Spec.Builder.annotate_exn b (Spec.task_name spec inf_task)
            ~output:(Spec.task_name spec o)
            (List.map (Spec.task_name spec) ins))
        inf_entries)
    result.Annot.inferred;
  Spec.Builder.finish_exn b

(* Sprinkle random, consistent, possibly-incomplete annotations over a
   spec: real neighbours only. *)
let sprinkle_annotations ~seed spec =
  let rng = mk_rng seed in
  let b = Spec.Builder.create ~name:(Spec.name spec) () in
  List.iter
    (fun t -> ignore (Spec.Builder.add_task_exn b (Spec.task_name spec t)))
    (Spec.tasks spec);
  Digraph.iter_edges
    (fun u v ->
      Spec.Builder.add_dependency_exn b (Spec.task_name spec u)
        (Spec.task_name spec v))
    (Spec.graph spec);
  List.iter
    (fun x ->
      let outs = Spec.consumers spec x and ins = Spec.producers spec x in
      if outs <> [] && rng 2 = 0 then
        List.iter
          (fun c ->
            if rng 3 > 0 then
              Spec.Builder.annotate_exn b (Spec.task_name spec x)
                ~output:(Spec.task_name spec c)
                (List.filter_map
                   (fun p ->
                     if rng 2 = 0 then Some (Spec.task_name spec p) else None)
                   ins))
          outs)
    (Spec.tasks spec);
  Spec.Builder.finish_exn b

let small_specs () =
  List.concat_map
    (fun family ->
      List.concat_map
        (fun size ->
          List.map
            (fun seed -> Gen.generate family ~seed ~size)
            [ 3; 17 ])
        [ 12; 40; 90 ])
    Gen.all_families

(* ------------------------------------------------------------------ *)
(* Dataflow framework                                                  *)
(* ------------------------------------------------------------------ *)

module Bits = Dataflow.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal

  let join acc v =
    Bitset.union_into ~into:acc v;
    acc
end)

(* Ancestor sets are the canonical forward analysis: value(v) = {v} ∪
   ⋃ value(pred). Must match the closure's transposed rows. *)
let ancestors_via_dataflow ?domains g =
  Bits.solve ?domains ~direction:Dataflow.Forward ~graph:g
    ~init:(fun v ->
      let s = Bitset.create (Digraph.n_nodes g) in
      Bitset.add s v;
      s)
    ~transfer:(fun _ acc -> acc)
    ()

let test_dataflow_matches_closure () =
  List.iter
    (fun spec ->
      let g = Spec.graph spec in
      let r = Reach.compute g in
      let values, stats = ancestors_via_dataflow ~domains:1 g in
      check_int "one pass on a DAG" 1 stats.Dataflow.rounds;
      Array.iteri
        (fun v s ->
          check_bool "dataflow ancestors = closure ancestors" true
            (Bitset.equal s (Reach.ancestors r v)))
        values)
    (small_specs ())

let test_dataflow_parallel_identical () =
  List.iter
    (fun spec ->
      let g = Spec.graph spec in
      let seq, _ = ancestors_via_dataflow ~domains:1 g in
      List.iter
        (fun d ->
          let par, _ = ancestors_via_dataflow ~domains:d g in
          check_bool
            (Printf.sprintf "parallel(%d) = sequential" d)
            true
            (Array.for_all2 Bitset.equal seq par))
        [ 2; 4; 8 ])
    (small_specs ())

let test_dataflow_backward () =
  (* Backward over succ = descendants. *)
  let spec = Gen.generate Gen.Series_parallel ~seed:5 ~size:40 in
  let g = Spec.graph spec in
  let r = Reach.compute g in
  let values, _ =
    Bits.solve ~domains:1 ~direction:Dataflow.Backward ~graph:g
      ~init:(fun v ->
        let s = Bitset.create (Digraph.n_nodes g) in
        Bitset.add s v;
        s)
      ~transfer:(fun _ acc -> acc)
      ()
  in
  Array.iteri
    (fun v s ->
      check_bool "backward dataflow = descendants" true
        (Bitset.equal s (Reach.descendants r v)))
    values

let test_dataflow_cyclic () =
  (* A cycle with a tail: 0 -> 1 -> 2 -> 0, 2 -> 3. The framework must fall
     back to round-robin iteration and still reach the closure's answer. *)
  let g = Digraph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let r = Reach.compute g in
  let values, stats = ancestors_via_dataflow ~domains:1 g in
  check_bool "cyclic solve iterates" true (stats.Dataflow.rounds >= 2);
  Array.iteri
    (fun v s ->
      check_bool "cyclic ancestors agree with closure" true
        (Bitset.equal s (Reach.ancestors r v)))
    values

(* ------------------------------------------------------------------ *)
(* Reachability labels                                                 *)
(* ------------------------------------------------------------------ *)

let test_labels_agree_with_reach () =
  List.iter
    (fun spec ->
      let labels = Spec.labels spec in
      let reach = Spec.reach spec in
      (match Labels.cross_validate labels reach with
       | None -> ()
       | Some (u, v) ->
         Alcotest.failf "labels disagree with closure on %s: (%d, %d)"
           (Spec.name spec) u v);
      check_bool "sampled validation also passes" true
        (Labels.cross_validate_sampled labels reach ~seed:7 ~samples:2000
         = None))
    (small_specs ())

let test_labels_on_unsound_corpus () =
  List.iter
    (fun (spec, _view) ->
      match Labels.cross_validate (Spec.labels spec) (Spec.reach spec) with
      | None -> ()
      | Some (u, v) ->
        Alcotest.failf "corpus labels disagree on %s: (%d, %d)"
          (Spec.name spec) u v)
    (Views.unsound_corpus ~seed:23 ~families:Gen.all_families
       ~sizes:[ 20; 60 ] ~per_cell:3)

let test_labels_index_smaller () =
  (* On a narrow graph (here a single chain, k = 1) the O(n·k) label index
     must be far smaller than the O(n²/w) dense closure. *)
  let n = 2000 in
  let tasks = List.init n (Printf.sprintf "t%d") in
  let edges = List.init (n - 1) (fun i -> (Printf.sprintf "t%d" i, Printf.sprintf "t%d" (i + 1))) in
  let spec = spec_of tasks edges in
  let labels = Spec.labels spec in
  (* The dense closure allocates one row of ceil(n/w) words per node. *)
  let closure_words = n * ((n + 62) / 63) in
  check_bool "label index much smaller than closure" true
    (Labels.index_words labels * 4 < closure_words)

(* ------------------------------------------------------------------ *)
(* Soundness engine agreement (acceptance criterion)                   *)
(* ------------------------------------------------------------------ *)

let report_fingerprint (r : S.report) =
  List.map (fun (c, witnesses) -> (c, witnesses)) r.S.unsound

let test_label_engine_agrees () =
  let corpus =
    Views.unsound_corpus ~seed:41 ~families:Gen.all_families ~sizes:[ 24; 64 ]
      ~per_cell:2
    @ List.map
        (fun spec ->
          (spec, Views.build ~seed:9 (Views.Connected_groups 4) spec))
        (small_specs ())
  in
  List.iter
    (fun (_, view) ->
      let reference = report_fingerprint (S.validate ~domains:1 view) in
      List.iter
        (fun domains ->
          let labelled =
            report_fingerprint (S.validate ~domains ~engine:`Labels view)
          in
          check_bool
            (Printf.sprintf "label engine = closure engine (%d domains)"
               domains)
            true
            (labelled = reference))
        [ 1; 2; 4; 8 ])
    corpus

(* ------------------------------------------------------------------ *)
(* Fine-grained flow                                                   *)
(* ------------------------------------------------------------------ *)

let test_flow_without_annotations_is_reachability () =
  List.iter
    (fun spec ->
      let flow = Flow.compute ~domains:1 spec in
      check_bool "no annotations: nothing dead" true (Flow.dead_edges flow = []);
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              check_bool "fine = coarse without annotations" true
                (Flow.fine_depends flow u v = Spec.depends spec u v))
            (Spec.tasks spec))
        (Spec.tasks spec))
    [ Gen.generate Gen.Layered ~seed:3 ~size:40;
      Gen.generate Gen.Erdos_renyi ~seed:4 ~size:40 ]

let test_flow_refines_reachability () =
  List.iter
    (fun spec ->
      let annotated = sprinkle_annotations ~seed:(Spec.n_tasks spec) spec in
      let flow = Flow.compute ~domains:1 annotated in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if Flow.fine_depends flow u v then
                check_bool "fine-grained implies coarse" true
                  (Spec.depends annotated u v))
            (Spec.tasks annotated))
        (Spec.tasks annotated))
    (small_specs ())

let test_flow_hand_example () =
  (* Diamond a -> {b, c} -> d. b and c both declare their outputs to d
     depend on nothing, so d no longer fine-depends on a. *)
  let spec =
    spec_of
      [ "a"; "b"; "c"; "d" ]
      [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]
      ~annots:[ ("b", "d", []); ("c", "d", []) ]
  in
  let flow = Flow.compute ~domains:1 spec in
  let t n = Spec.task_of_name_exn spec n in
  check_bool "coarse a->d holds" true (Spec.depends spec (t "a") (t "d"));
  check_bool "fine a->d refuted" false
    (Flow.fine_depends flow (t "a") (t "d"));
  check_bool "fine b->d holds" true (Flow.fine_depends flow (t "b") (t "d"));
  (* a's data dies inside b and c: both a-edges are dead. *)
  check_bool "a's out-edges are dead" true
    (Flow.dead_edges flow = [ (t "a", t "b"); (t "a", t "c") ])

let test_flow_effective_entry_defaults () =
  let spec =
    spec_of [ "a"; "b"; "x"; "y" ]
      [ ("a", "x"); ("b", "x"); ("x", "y") ]
  in
  let flow = Flow.compute ~domains:1 spec in
  let t n = Spec.task_of_name_exn spec n in
  check_bool "missing entry defaults to all producers" true
    (Flow.effective_entry flow (t "x") ~output:(t "y") = [ t "a"; t "b" ])

let test_flow_parallel_identical () =
  List.iter
    (fun spec ->
      let annotated = sprinkle_annotations ~seed:77 spec in
      let seq = Flow.compute ~domains:1 annotated in
      List.iter
        (fun d ->
          let par = Flow.compute ~domains:d annotated in
          check_bool "parallel flow: same dead edges" true
            (Flow.dead_edges par = Flow.dead_edges seq);
          List.iter
            (fun v ->
              check_bool "parallel flow: same dependency sets" true
                (Flow.depends_on par v = Flow.depends_on seq v))
            (Spec.tasks annotated))
        [ 2; 4 ])
    [ Gen.generate Gen.Layered ~seed:8 ~size:60;
      Gen.generate Gen.Series_parallel ~seed:9 ~size:60 ]

(* ------------------------------------------------------------------ *)
(* Annotation validation                                               *)
(* ------------------------------------------------------------------ *)

let test_validate_issues () =
  let spec =
    spec_of [ "a"; "b"; "x"; "y"; "z" ]
      [ ("a", "x"); ("b", "x"); ("x", "y"); ("x", "z") ]
      ~annots:
        [ ("x", "y", [ "a"; "y" ]);  (* y is not a producer of x *)
          ("x", "y", [ "b" ]);       (* duplicate entry for y *)
          ("x", "a", [ "b" ]);       (* a is not a consumer of x *)
          (* no entry for z: incomplete *) ]
  in
  let t n = Spec.task_of_name_exn spec n in
  let issues = Annot.validate spec in
  let expected =
    [ Annot.Not_an_input { task = t "x"; output = t "y"; input = t "y" };
      Annot.Duplicate_output { task = t "x"; output = t "y" };
      Annot.Not_an_output { task = t "x"; output = t "a" };
      Annot.Missing_output { task = t "x"; output = t "z" } ]
  in
  check_bool "exact issue list" true (issues = expected);
  check_int "three inconsistencies" 3
    (List.length (List.filter Annot.is_inconsistency issues))

let test_validate_clean_and_unannotated () =
  let clean =
    spec_of [ "a"; "x"; "y" ]
      [ ("a", "x"); ("x", "y") ]
      ~annots:[ ("x", "y", [ "a" ]) ]
  in
  check_bool "complete annotation raises nothing" true
    (Annot.validate clean = []);
  let bare = spec_of [ "a"; "x" ] [ ("a", "x") ] in
  check_bool "unannotated spec raises nothing" true (Annot.validate bare = [])

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let test_infer_completes_and_prunes () =
  (* x: inputs {a, b}, outputs {c, d}. Entry for c declared as {a}; d's
     entry is missing. d itself declares its only output constant, so the
     edge x -> d is dead, b's data can never matter, and the inferred entry
     for d must be pruned to {a}. *)
  let spec =
    spec_of
      [ "a"; "b"; "x"; "c"; "d"; "e" ]
      [ ("a", "x"); ("b", "x"); ("x", "c"); ("x", "d"); ("d", "e") ]
      ~annots:[ ("x", "c", [ "a" ]); ("d", "e", []) ]
  in
  let t n = Spec.task_of_name_exn spec n in
  let result = Annot.infer ~domains:1 spec in
  let entry_for task =
    List.find_opt (fun i -> i.Annot.inf_task = task) result.Annot.inferred
  in
  (match entry_for (t "x") with
   | Some { Annot.inf_entries = [ (d, producers) ]; _ } ->
     check_bool "inferred output is d" true (d = t "d");
     check_bool "dead input b pruned" true (producers = [ t "a" ])
   | _ -> Alcotest.fail "expected exactly one inferred entry for x");
  (* Sources with no inputs get empty entries; fully annotated tasks and
     sinks get none. *)
  (match entry_for (t "a") with
   | Some { Annot.inf_entries = [ (x, []) ]; _ } ->
     check_bool "a's entry names x" true (x = t "x")
   | _ -> Alcotest.fail "expected an empty entry for source a");
  check_bool "fully annotated d not re-inferred" true (entry_for (t "d") = None);
  check_bool "sink e not inferred" true (entry_for (t "e") = None);
  check_int "fixpoint verified on the second pass" 2 result.Annot.iterations

let test_infer_idempotent () =
  List.iter
    (fun spec ->
      let annotated = sprinkle_annotations ~seed:(1 + Spec.n_tasks spec) spec in
      let first = Annot.infer ~domains:1 annotated in
      let applied = apply_inferred annotated first in
      let second = Annot.infer ~domains:1 applied in
      check_bool "nothing left to infer after applying" true
        (second.Annot.inferred = []);
      (* Applying the inferred entries must not change liveness: the same
         edges are dead before and after. *)
      check_bool "dead edges unchanged by application" true
        (Flow.dead_edges (Flow.compute ~domains:1 applied)
        = Flow.dead_edges (Flow.compute ~domains:1 annotated)))
    (small_specs ())

let test_infer_unannotated_spec_defaults_to_all_inputs () =
  let spec = Gen.generate Gen.Pipeline ~seed:6 ~size:20 in
  let result = Annot.infer ~domains:1 spec in
  List.iter
    (fun { Annot.inf_task; inf_entries } ->
      List.iter
        (fun (c, producers) ->
          ignore c;
          check_bool "annotation-free inference keeps every input" true
            (producers = Spec.producers spec inf_task))
        inf_entries)
    result.Annot.inferred

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [ ( "dataflow",
        [ Alcotest.test_case "matches closure on DAG families" `Quick
            test_dataflow_matches_closure;
          Alcotest.test_case "parallel identical to sequential" `Quick
            test_dataflow_parallel_identical;
          Alcotest.test_case "backward direction" `Quick test_dataflow_backward;
          Alcotest.test_case "cyclic fallback" `Quick test_dataflow_cyclic ] );
      ( "labels",
        [ Alcotest.test_case "agree with closure on all families" `Quick
            test_labels_agree_with_reach;
          Alcotest.test_case "agree on the unsound corpus" `Quick
            test_labels_on_unsound_corpus;
          Alcotest.test_case "index far smaller on pipelines" `Quick
            test_labels_index_smaller;
          Alcotest.test_case "soundness engine agreement at 1/2/4/8 domains"
            `Quick test_label_engine_agrees ] );
      ( "flow",
        [ Alcotest.test_case "no annotations = plain reachability" `Quick
            test_flow_without_annotations_is_reachability;
          Alcotest.test_case "fine-grained implies coarse" `Quick
            test_flow_refines_reachability;
          Alcotest.test_case "diamond hand example" `Quick
            test_flow_hand_example;
          Alcotest.test_case "missing entries default to all inputs" `Quick
            test_flow_effective_entry_defaults;
          Alcotest.test_case "parallel identical" `Quick
            test_flow_parallel_identical ] );
      ( "annotations",
        [ Alcotest.test_case "validation finds exact issues" `Quick
            test_validate_issues;
          Alcotest.test_case "clean and unannotated specs are silent" `Quick
            test_validate_clean_and_unannotated;
          Alcotest.test_case "inference completes and prunes" `Quick
            test_infer_completes_and_prunes;
          Alcotest.test_case "inference is idempotent" `Quick
            test_infer_idempotent;
          Alcotest.test_case "annotation-free inference is all-inputs" `Quick
            test_infer_unannotated_spec_defaults_to_all_inputs ] ) ]
