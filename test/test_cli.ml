(* Tests for the CLI support library: tables, JSON emission, rendering. *)

open Wolves_workflow
module Table = Wolves_cli.Table
module Json = Wolves_cli.Json
module Render = Wolves_cli.Render
module Editor = Wolves_cli.Editor

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_basic () =
  let rendered =
    Table.render
      ~align:[ Table.Left; Table.Right ]
      ~header:[ "name"; "count" ]
      [ [ "alpha"; "1" ]; [ "b"; "2000" ] ]
  in
  check_string "layout"
    "name   count\n-----  -----\nalpha      1\nb       2000" rendered

let test_table_ragged () =
  let rendered = Table.render ~header:[ "a" ] [ [ "x"; "y" ]; [] ] in
  (* Ragged rows padded; header grows to widest row. *)
  check_bool "renders" true (contains rendered "x  y")

let test_table_kv () =
  check_string "kv"
    "key     1\nlonger  2"
    (Table.render_kv [ ("key", "1"); ("longer", "2") ])

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_scalars () =
  check_string "null" "null" (Json.to_string Json.Null);
  check_string "bool" "true" (Json.to_string (Json.Bool true));
  check_string "int" "42" (Json.to_string (Json.Int 42));
  check_string "float" "1.5" (Json.to_string (Json.Float 1.5));
  check_string "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check_string "string escaped" "\"a\\\"b\\n\\u0001\""
    (Json.to_string (Json.String "a\"b\n\001"))

let test_json_compact () =
  check_string "compact object"
    "{\"a\":[1,2],\"b\":{}}"
    (Json.to_string ~pretty:false
       (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]); ("b", Json.Obj []) ]))

let test_json_pretty () =
  let rendered =
    Json.to_string (Json.Obj [ ("xs", Json.List [ Json.Int 1 ]) ])
  in
  check_string "pretty" "{\n  \"xs\": [\n    1\n  ]\n}" rendered

(* ------------------------------------------------------------------ *)
(* Render                                                              *)
(* ------------------------------------------------------------------ *)

let test_render_view_summary () =
  let _, view = Examples.figure1 () in
  let plain = Render.view_summary view in
  check_bool "marks unsound" true (contains plain "[UNSOUND] 16:Align Sequences");
  check_bool "lists witness" true
    (contains plain "no path 4:Curate Annotations -> 7:Create Alignment");
  check_bool "no ansi codes by default" false (contains plain "\027[");
  let coloured = Render.view_summary ~color:true view in
  check_bool "ansi when coloured" true (contains coloured "\027[31m")

let test_render_dot () =
  let _, view = Examples.figure1 () in
  let dot = Render.view_dot view in
  check_bool "unsound cluster red" true (contains dot "color=\"red\"");
  check_bool "sound cluster green" true (contains dot "color=\"forestgreen\"");
  check_bool "task label" true (contains dot "4:Curate Annotations")

let test_render_provenance () =
  let _, view = Examples.figure1 () in
  let c18 = Examples.figure1_query_composite view in
  let text = Render.provenance_summary view c18 in
  check_bool "warns about spurious items" true (contains text "WARNING");
  let corrected, _ = Wolves_core.Corrector.correct Wolves_core.Corrector.Strong view in
  let c18' = Option.get (View.composite_of_name corrected "18:Format Alignment") in
  let clean = Render.provenance_summary corrected c18' in
  check_bool "clean after correction" true (contains clean "exact")

let test_render_spec_summary () =
  let spec, _ = Examples.figure1 () in
  let text = Render.spec_summary spec in
  check_bool "topological listing" true
    (contains text "1:Select Entries -> 2:Split Entries");
  check_bool "marks outputs" true (contains text "12:Display Tree -> (output)")


(* ------------------------------------------------------------------ *)
(* Editor (the GUI as a scriptable REPL)                               *)
(* ------------------------------------------------------------------ *)

let test_editor_script () =
  let spec, view = Examples.figure1 () in
  ignore spec;
  let editor = Editor.create view in
  let out =
    Editor.run_script editor
      [ "# rebuild and repair composite 16";
        "";
        "diagnose \"16:Align Sequences\"";
        "correct \"16:Align Sequences\" strong";
        "show";
        "quit";
        "show  # never reached" ]
  in
  check_bool "diagnose found the core" true
    (List.exists (fun l -> contains l "minimal unsound core") out);
  check_bool "correction happened" true
    (List.exists (fun l -> contains l "split \"16:Align Sequences\" into 2") out);
  check_bool "final show is sound" true
    (List.exists (fun l -> contains l "view is sound") out);
  check_bool "quit stops the script" false
    (List.exists (fun l -> contains l "never reached") out);
  check_bool "session ends sound" true
    (Wolves_core.Session.is_sound (Editor.session editor))

let test_editor_errors () =
  let _, view = Examples.figure1 () in
  let editor = Editor.create view in
  let expect_error line =
    match Editor.execute editor line with
    | `Error _ -> ()
    | `Ok _ | `Quit -> Alcotest.failf "expected %S to fail" line
  in
  expect_error "bogus";
  expect_error "move";
  expect_error "move \"nope\" \"16:Align Sequences\"";
  expect_error "correct \"16:Align Sequences\" sideways";
  expect_error "create \"X\" \"ghost\"";
  expect_error "\"unterminated";
  expect_error "undo";
  match Editor.execute editor "help" with
  | `Ok msg -> check_bool "help text" true (contains msg "commands:")
  | _ -> Alcotest.fail "help failed"

let test_editor_quoting () =
  let _, view = Examples.figure1 () in
  let editor = Editor.create view in
  (match
     Editor.execute editor
       "create \"My Stage\" \"4:Curate Annotations\" \"5:Format Annotations\""
   with
   | `Ok _ -> ()
   | `Error m -> Alcotest.fail m
   | `Quit -> Alcotest.fail "quit?");
  match Wolves_core.Session.members (Editor.session editor) "My Stage" with
  | Some members -> Alcotest.(check int) "two members" 2 (List.length members)
  | None -> Alcotest.fail "composite not created"

let editor_fuzz =
  QCheck2.Test.make ~name:"editor total on random command lines" ~count:300
    QCheck2.Gen.(
      string_size
        ~gen:(oneofl [ 'a'; ' '; '"'; '\\'; '#'; 'm'; 'c'; '1'; 'x' ])
        (int_range 0 40))
    (fun line ->
      let _, view = Examples.figure1 () in
      let editor = Editor.create view in
      match Editor.execute editor line with
      | `Ok _ | `Error _ | `Quit -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Benchgate                                                           *)
(* ------------------------------------------------------------------ *)

module Benchgate = Wolves_cli.Benchgate

(* A baseline artifact as bench --json writes it (sections with wall
   times, smoke flag). *)
let baseline sections =
  Json.Obj
    [ ("smoke", Json.Bool false);
      ( "sections",
        Json.Obj
          (List.map
             (fun (id, wall) ->
               (id, Json.Obj [ ("wall_time_s", Json.Float wall) ]))
             sections) ) ]

let verdict_of result id =
  let row =
    List.find (fun r -> r.Benchgate.id = id) result.Benchgate.rows
  in
  row.Benchgate.verdict

let test_benchgate_pass_and_regression () =
  let base = baseline [ ("A", 1.0); ("B", 0.001) ] in
  (* A within 1.5x + slack; B microsecond-scale, protected by the slack. *)
  let ok =
    Benchgate.compare ~require_all:true ~smoke:false ~baseline:base
      [ ("A", 1.2); ("B", 0.04) ]
  in
  check_bool "within threshold passes" true (ok.Benchgate.failed = []);
  let slow =
    Benchgate.compare ~require_all:true ~smoke:false ~baseline:base
      [ ("A", 2.0); ("B", 0.001) ]
  in
  Alcotest.(check (list string)) "regression flagged" [ "A" ]
    slow.Benchgate.failed;
  check_bool "verdict is Regression" true
    (verdict_of slow "A" = Benchgate.Regression)

let test_benchgate_missing_section_fails () =
  (* The silent-pass direction: B ran in the baseline but not now. Before
     the gate checked it, a crashed section passed by omission. *)
  let base = baseline [ ("A", 1.0); ("B", 1.0) ] in
  let result =
    Benchgate.compare ~require_all:true ~smoke:false ~baseline:base
      [ ("A", 1.0) ]
  in
  Alcotest.(check (list string)) "missing section fails the gate" [ "B" ]
    result.Benchgate.failed;
  check_bool "verdict is Missing" true
    (verdict_of result "B" = Benchgate.Missing);
  check_bool "missing row has no current time" true
    ((List.find (fun r -> r.Benchgate.id = "B") result.Benchgate.rows)
       .Benchgate.current_s
    = None)

let test_benchgate_subset_run_passes () =
  (* An explicit subset run (require_all = false) legitimately skips
     baseline sections. *)
  let base = baseline [ ("A", 1.0); ("B", 1.0) ] in
  let result =
    Benchgate.compare ~require_all:false ~smoke:false ~baseline:base
      [ ("A", 1.0) ]
  in
  check_bool "subset run passes" true (result.Benchgate.failed = []);
  check_bool "no row for the skipped section" true
    (not (List.exists (fun r -> r.Benchgate.id = "B") result.Benchgate.rows))

let test_benchgate_new_section_passes () =
  (* A section with no baseline entry is informational, not a failure. *)
  let base = baseline [ ("A", 1.0) ] in
  let result =
    Benchgate.compare ~require_all:true ~smoke:false ~baseline:base
      [ ("A", 1.0); ("NEW", 99.0) ]
  in
  check_bool "new section passes" true (result.Benchgate.failed = []);
  check_bool "verdict is No_baseline" true
    (verdict_of result "NEW" = Benchgate.No_baseline)

let test_benchgate_smoke_mismatch () =
  let base = baseline [ ("A", 1.0) ] in
  let result =
    Benchgate.compare ~require_all:true ~smoke:true ~baseline:base
      [ ("A", 1.0) ]
  in
  check_bool "smoke mismatch detected" true result.Benchgate.smoke_mismatch;
  check_bool "mismatch alone does not fail" true (result.Benchgate.failed = [])

let test_benchgate_threshold_and_slack () =
  let base = baseline [ ("A", 1.0) ] in
  let gate ?threshold ?slack_s wall =
    (Benchgate.compare ?threshold ?slack_s ~require_all:true ~smoke:false
       ~baseline:base [ ("A", wall) ])
      .Benchgate.failed
    = []
  in
  check_bool "exactly at the limit passes" true
    (gate ~threshold:1.5 ~slack_s:0.0 1.5);
  check_bool "over the limit fails" false (gate ~threshold:1.5 ~slack_s:0.0 1.51);
  check_bool "slack absorbs the excess" true (gate ~threshold:1.5 ~slack_s:0.05 1.51)

let () =
  Alcotest.run "wolves_cli"
    [ ( "table",
        [ Alcotest.test_case "basic layout" `Quick test_table_basic;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged;
          Alcotest.test_case "key-value" `Quick test_table_kv ] );
      ( "json",
        [ Alcotest.test_case "scalars and escaping" `Quick test_json_scalars;
          Alcotest.test_case "compact" `Quick test_json_compact;
          Alcotest.test_case "pretty" `Quick test_json_pretty ] );
      ( "editor",
        [ Alcotest.test_case "scripted session" `Quick test_editor_script;
          Alcotest.test_case "errors" `Quick test_editor_errors;
          Alcotest.test_case "quoting" `Quick test_editor_quoting;
          QCheck_alcotest.to_alcotest editor_fuzz ] );
      ( "benchgate",
        [ Alcotest.test_case "pass and regression" `Quick
            test_benchgate_pass_and_regression;
          Alcotest.test_case "missing section fails" `Quick
            test_benchgate_missing_section_fails;
          Alcotest.test_case "subset run passes" `Quick
            test_benchgate_subset_run_passes;
          Alcotest.test_case "new section passes" `Quick
            test_benchgate_new_section_passes;
          Alcotest.test_case "smoke mismatch warns" `Quick
            test_benchgate_smoke_mismatch;
          Alcotest.test_case "threshold and slack" `Quick
            test_benchgate_threshold_and_slack ] );
      ( "render",
        [ Alcotest.test_case "view summary" `Quick test_render_view_summary;
          Alcotest.test_case "dot with colours" `Quick test_render_dot;
          Alcotest.test_case "provenance summary" `Quick test_render_provenance;
          Alcotest.test_case "spec summary" `Quick test_render_spec_summary ] ) ]
