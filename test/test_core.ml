(* Tests for the WOLVES core: the soundness validator (Def 2.2/2.3,
   Prop 2.1), the three correctors, quality, the estimator and the hardness
   families. Property tests cross-check the algorithms against the
   definitional oracles on random instances. *)

open Wolves_workflow
module Bitset = Wolves_graph.Bitset
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Q = Wolves_core.Quality
module E = Wolves_core.Estimator
module H = Wolves_core.Hardness
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names spec tasks = List.map (Spec.task_name spec) tasks

(* ------------------------------------------------------------------ *)
(* Soundness: Figure 1                                                 *)
(* ------------------------------------------------------------------ *)

let test_fig1_io () =
  let spec, view = Examples.figure1 () in
  let c16 = Examples.figure1_unsound_composite view in
  let io = S.composite_io view c16 in
  Alcotest.(check (list string)) "16.in"
    [ "4:Curate Annotations"; "7:Create Alignment" ]
    (names spec io.S.inputs);
  Alcotest.(check (list string)) "16.out"
    [ "4:Curate Annotations"; "7:Create Alignment" ]
    (names spec io.S.outputs)

let test_fig1_validator () =
  let spec, view = Examples.figure1 () in
  let report = S.validate view in
  check_int "exactly one unsound composite" 1 (List.length report.S.unsound);
  let c, witnesses = List.hd report.S.unsound in
  Alcotest.(check string) "it is composite 16" "16:Align Sequences"
    (View.composite_name view c);
  (* The paper's witness: no path from 4 in 16.in to 7 in 16.out. *)
  let t4 = Spec.task_of_name_exn spec "4:Curate Annotations" in
  let t7 = Spec.task_of_name_exn spec "7:Create Alignment" in
  check_bool "paper witness (4, 7) present" true (List.mem (t4, t7) witnesses);
  check_bool "whole view unsound" false (S.is_sound view)

let test_fig1_in_out_boundaries () =
  let _, view = Examples.figure1 () in
  (* Composite 19 contains the workflow sink: its out set is empty, so it is
     vacuously sound; composite 13 contains the source: empty in set. *)
  let c19 = Option.get (View.composite_of_name view "19:Build Phylo Tree") in
  let io = S.composite_io view c19 in
  check_int "19.out empty (contains the final sink)" 0 (List.length io.S.outputs);
  check_bool "19 sound" true (S.composite_sound view c19);
  let c13 = Option.get (View.composite_of_name view "13:Select Entries") in
  let io13 = S.composite_io view c13 in
  check_int "13.in empty (contains the source)" 0 (List.length io13.S.inputs);
  check_bool "13 sound" true (S.composite_sound view c13)

let test_fig1_correct () =
  let _, view = Examples.figure1 () in
  List.iter
    (fun criterion ->
      let corrected, outcomes = C.correct criterion view in
      check_bool "corrected view sound" true (S.is_sound corrected);
      check_int "one composite corrected" 1 (List.length outcomes);
      let _, outcome = List.hd outcomes in
      (* {4,7} is unsound and its only sound split is singletons. *)
      check_int "split into singletons" 2 (List.length outcome.C.parts);
      check_int "view grew by one composite" 8 (View.n_composites corrected))
    [ C.Weak; C.Strong; C.Optimal ]

(* ------------------------------------------------------------------ *)
(* Soundness: subsets, Prop 2.1 and Def 2.1                            *)
(* ------------------------------------------------------------------ *)

let test_singletons_sound () =
  let spec, _ = Examples.figure1 () in
  List.iter
    (fun t ->
      check_bool "singleton sound" true
        (S.subset_sound spec (Bitset.of_list (Spec.n_tasks spec) [ t ])))
    (Spec.tasks spec)

let test_full_set_sound () =
  let spec, _ = Examples.figure1 () in
  let all = Bitset.create (Spec.n_tasks spec) in
  Bitset.fill all;
  check_bool "whole workflow sound (empty in/out)" true (S.subset_sound spec all)

let test_prop21_gap () =
  (* The counterexample: literal Def 2.1 holds, Def 2.3 view soundness does
     not — the operative validator is strictly stronger. *)
  let _, view = Examples.prop21_counterexample () in
  check_bool "Def 2.1 holds" true (S.preserves_paths view);
  check_bool "but a composite is unsound" false (S.is_sound view);
  match (S.validate view).S.unsound with
  | [ (c, [ _witness ]) ] ->
    Alcotest.(check string) "it is T" "T" (View.composite_name view c)
  | _ -> Alcotest.fail "expected exactly T with one witness"

let test_naive_agrees () =
  let check_view view =
    match S.naive_preserves_paths view with
    | Some naive ->
      check_bool "naive = closure-based Def 2.1" naive (S.preserves_paths view)
    | None -> Alcotest.fail "fuel exhausted on a small instance"
  in
  let _, v1 = Examples.figure1 () in
  let _, v2 = Examples.prop21_counterexample () in
  let _, v3 = Examples.figure3 () in
  check_view v1;
  check_view v2;
  check_view v3

let test_naive_fuel () =
  let _, view = Examples.figure1 () in
  Alcotest.(check (option bool)) "tiny fuel -> None" None
    (S.naive_preserves_paths ~fuel:3 view)

let test_classify_unsound () =
  let spec, view = Examples.figure1 () in
  let set c = Bitset.of_list (Spec.n_tasks spec) (View.members view c) in
  (* 16 = {curate annotations, create alignment}: two independent lanes. *)
  let c16 = Examples.figure1_unsound_composite view in
  (match S.classify_unsound spec (set c16) with
   | Some (S.Parallel_lanes 2) -> ()
   | other ->
     Alcotest.failf "expected 2 lanes, got %s"
       (match other with
        | None -> "sound"
        | Some k -> Format.asprintf "%a" S.pp_unsoundness_kind k));
  (* Sound composites are not classified. *)
  let c14 = Option.get (View.composite_of_name view "14:Split & Annotate") in
  Alcotest.(check bool) "sound -> None" true
    (S.classify_unsound spec (set c14) = None);
  (* The figure 3 bipartite block wrapped with its entries: entangled. *)
  let spec3, _ = Examples.figure3 () in
  let t n = Spec.task_of_name_exn spec3 n in
  let block = Bitset.of_list (Spec.n_tasks spec3) [ t "c"; t "f"; t "g" ] in
  (match S.classify_unsound spec3 block with
   | Some S.Entangled -> ()
   | _ -> Alcotest.fail "expected entangled")

(* Lane counting: [k] independent chains between a shared source and sink,
   grouped without the source/sink, are [k] parallel lanes; a bridging edge
   fuses two of them. *)
let lanes_spec ?(bridge = false) k =
  let chains = List.init k Fun.id in
  let tasks =
    ("src" :: List.concat_map
                (fun i -> [ Printf.sprintf "in%d" i; Printf.sprintf "out%d" i ])
                chains)
    @ [ "dst" ]
  in
  let deps =
    List.concat_map
      (fun i ->
        [ ("src", Printf.sprintf "in%d" i);
          (Printf.sprintf "in%d" i, Printf.sprintf "out%d" i);
          (Printf.sprintf "out%d" i, "dst") ])
      chains
    @ (if bridge then [ ("out0", "in1") ] else [])
  in
  let spec = Spec.of_tasks_exn ~name:"lanes" tasks deps in
  let members =
    Bitset.of_list (Spec.n_tasks spec)
      (List.filter
         (fun t -> Spec.task_name spec t <> "src" && Spec.task_name spec t <> "dst")
         (Spec.tasks spec))
  in
  (spec, members)

let test_classify_lane_counts () =
  List.iter
    (fun k ->
      let spec, members = lanes_spec k in
      match S.classify_unsound spec members with
      | Some (S.Parallel_lanes n) ->
        check_int (Printf.sprintf "%d chains -> %d lanes" k k) k n
      | other ->
        Alcotest.failf "expected %d lanes, got %s" k
          (match other with
           | None -> "sound"
           | Some kind -> Format.asprintf "%a" S.pp_unsoundness_kind kind))
    [ 2; 3; 5 ];
  let spec, members = lanes_spec ~bridge:true 3 in
  match S.classify_unsound spec members with
  | Some (S.Parallel_lanes 2) -> ()
  | other ->
    Alcotest.failf "bridged chains should fuse to 2 lanes, got %s"
      (match other with
       | None -> "sound"
       | Some kind -> Format.asprintf "%a" S.pp_unsoundness_kind kind)

(* minimal_unsound_core: the result is itself unsound, and 1-minimal —
   dropping any single member restores soundness. *)
let core_is_1_minimal spec core =
  (not (S.subset_sound spec core))
  && List.for_all
       (fun t ->
         let reduced = Bitset.copy core in
         Bitset.remove reduced t;
         S.subset_sound spec reduced)
       (Bitset.elements core)

let test_minimal_unsound_core () =
  let spec, view = Examples.figure1 () in
  let c16 = Examples.figure1_unsound_composite view in
  let members = Bitset.of_list (Spec.n_tasks spec) (View.members view c16) in
  (match S.minimal_unsound_core spec members with
   | None -> Alcotest.fail "figure 1's unsound composite must have a core"
   | Some core ->
     check_bool "core within members" true (Bitset.subset core members);
     check_bool "core unsound and 1-minimal" true (core_is_1_minimal spec core));
  (* Sound subsets have no core. *)
  let sound = Bitset.of_list (Spec.n_tasks spec) [] in
  check_bool "empty subset has no core" true
    (S.minimal_unsound_core spec sound = None)

(* ------------------------------------------------------------------ *)
(* Corrector: Figure 3 and the paper's spot checks                     *)
(* ------------------------------------------------------------------ *)

let test_fig3_counts () =
  let spec, view = Examples.figure3 () in
  let t = Examples.figure3_composite view in
  let members = View.members view t in
  check_bool "T unsound" false (S.composite_sound view t);
  let weak = C.split_subset C.Weak spec members in
  let strong = C.split_subset C.Strong spec members in
  let optimal = C.split_subset C.Optimal spec members in
  check_int "weak = 8 parts (paper Fig 3b)" 8 (List.length weak.C.parts);
  check_int "strong = 5 parts (paper Fig 3c)" 5 (List.length strong.C.parts);
  check_int "optimal = 5 parts" 5 (List.length optimal.C.parts);
  check_bool "strong certified" true strong.C.certified_strong;
  (* Every split is a valid split into sound parts. *)
  List.iter
    (fun o -> check_bool "valid split" true (C.Oracle.valid_split spec members o.C.parts))
    [ weak; strong; optimal ];
  (* Definitional optimality of the outputs. *)
  check_bool "weak output weakly optimal" true
    (C.Oracle.weakly_local_optimal spec weak.C.parts);
  Alcotest.(check (option bool)) "strong output strongly optimal" (Some true)
    (C.Oracle.strongly_local_optimal spec strong.C.parts);
  (* And the weak output is NOT strongly optimal — the paper's point. *)
  Alcotest.(check (option bool)) "weak output not strongly optimal" (Some false)
    (C.Oracle.strongly_local_optimal spec weak.C.parts)

(* outcome.checks counts only full soundness decisions; the subset DP's
   bit-parallel mask evaluations and the anytime search's partial pruning
   probes report under outcome.probes instead of inflating checks. *)
let test_checks_vs_probes () =
  let spec, view = Examples.figure3 () in
  let members = View.members view (Examples.figure3_composite view) in
  let weak = C.split_subset C.Weak spec members in
  let strong = C.split_subset C.Strong spec members in
  let optimal = C.split_subset C.Optimal spec members in
  check_int "weak probes nothing partially" 0 weak.C.probes;
  check_int "strong probes nothing partially" 0 strong.C.probes;
  check_bool "weak performs full checks" true (weak.C.checks > 0);
  check_bool "optimal's mask evaluations are probes" true
    (optimal.C.probes > 0);
  check_bool "optimal's checks stay below its probes" true
    (optimal.C.checks < optimal.C.probes);
  let anytime, proven = C.split_subset_anytime spec members in
  check_bool "anytime proves figure 3" true proven;
  check_bool "anytime separates pruning probes from checks" true
    (anytime.C.probes > 0 && anytime.C.checks > 0)

let test_fig3_spot_checks () =
  (* Direct transcription of the paper's §2.2 narrative. *)
  let spec, _ = Examples.figure3 () in
  let t n = Spec.task_of_name_exn spec n in
  check_bool "{f,g} not combinable (no path g -> f)" false
    (C.combinable spec [ t "f" ] [ t "g" ]);
  check_bool "{c,d,f,g} merges into a sound task" true
    (C.combinable spec [ t "c"; t "d" ] [ t "f"; t "g" ]);
  check_bool "{c,d} alone not combinable" false
    (C.combinable spec [ t "c" ] [ t "d" ])

let test_sound_composite_untouched () =
  let spec, view = Examples.figure3 () in
  let t = Examples.figure3_composite view in
  (* Splitting a sound composite returns it whole. *)
  let source = Option.get (View.composite_of_name view "Source") in
  let o = C.split_subset C.Strong spec (View.members view source) in
  check_int "sound composite kept whole" 1 (List.length o.C.parts);
  check_bool "trivially certified" true o.C.certified_strong;
  (* correct only rewrites unsound composites *)
  let corrected, outcomes = C.correct C.Strong view in
  check_int "only T corrected" 1 (List.length outcomes);
  check_bool "T was the target" true (fst (List.hd outcomes) = t);
  check_int "composite count 3 - 1 + 5" 7 (View.n_composites corrected)

let test_split_composite_view_level () =
  let _, view = Examples.figure3 () in
  let t = Examples.figure3_composite view in
  let view', outcome = C.split_composite C.Strong view t in
  check_int "5 new parts" 5 (List.length outcome.C.parts);
  check_int "view has 7 composites" 7 (View.n_composites view');
  check_bool "result sound" true (S.is_sound view');
  check_bool "part names derive from T" true
    (View.composite_of_name view' "T/0" <> None)

let test_invalid_inputs () =
  let spec, _ = Examples.figure3 () in
  Alcotest.check_raises "empty members"
    (Invalid_argument "Corrector: empty composite") (fun () ->
      ignore (C.split_subset C.Weak spec []));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Corrector: duplicate members") (fun () ->
      ignore (C.split_subset C.Weak spec [ 1; 1 ]));
  Alcotest.check_raises "unknown task"
    (Invalid_argument "Corrector: unknown task 99") (fun () ->
      ignore (C.split_subset C.Weak spec [ 99 ]));
  let members = List.init 19 Fun.id in
  Alcotest.check_raises "optimal size guard"
    (Invalid_argument "Corrector: optimal split limited to 18 tasks (got 19)")
    (fun () ->
      let big =
        Spec.of_tasks_exn ~name:"big"
          (List.init 19 (Printf.sprintf "t%d"))
          (List.init 18 (fun i ->
               (Printf.sprintf "t%d" i, Printf.sprintf "t%d" (i + 1))))
      in
      (* a chain is sound, so force the check by growing the limit... the
         guard fires before soundness for oversized optimal requests only
         when the composite is unsound; use an unsound wide instance. *)
      ignore big;
      let spec, ms = H.wide_block_instance ~width:10 in
      ignore members;
      ignore (C.split_subset C.Optimal spec (List.filteri (fun i _ -> i < 19) ms)))

(* ------------------------------------------------------------------ *)
(* Deadline-degrading correction                                       *)
(* ------------------------------------------------------------------ *)

let test_deadline_tiers () =
  let spec, view = Examples.figure3 () in
  let members = View.members view (Examples.figure3_composite view) in
  (* Zero budget: only the weak floor runs. *)
  let zero = C.with_deadline ~deadline_s:0.0 spec members in
  check_bool "zero budget answers weak" true (zero.C.tier = C.Weak);
  check_int "weak floor = 8 parts" 8 (List.length zero.C.result.C.parts);
  check_bool "strong was abandoned" true (zero.C.abandoned = Some C.Strong);
  check_bool "not proven optimal" false zero.C.proven_optimal;
  check_bool "weak floor still a valid sound split" true
    (C.Oracle.valid_split spec members zero.C.result.C.parts);
  (* 1 ms budget: the weak tier's 77 checks already cost 7.7 ms in the
     modeled budget, so the strong refinement is deterministically cut —
     this PR's acceptance gate for [correct --deadline 1]. *)
  let ms1 = C.with_deadline ~deadline_s:0.001 spec members in
  check_bool "1 ms answers the weak tier" true (ms1.C.tier = C.Weak);
  check_bool "1 ms abandoned strong" true (ms1.C.abandoned = Some C.Strong);
  (* Generous budget: the full chain runs, the minimum is proven. *)
  let full = C.with_deadline ~deadline_s:60.0 spec members in
  check_bool "generous budget reaches optimal" true (full.C.tier = C.Optimal);
  check_bool "proven minimum" true full.C.proven_optimal;
  check_int "optimal = 5 parts" 5 (List.length full.C.result.C.parts);
  check_bool "nothing abandoned" true (full.C.abandoned = None);
  (* Cutting the exact search with a node budget delivers the Strong tier:
     the strong refinement completed, the minimality proof did not. *)
  let cut = C.with_deadline ~deadline_s:60.0 ~node_budget:50 spec members in
  check_bool "node-cut delivers the strong tier" true (cut.C.tier = C.Strong);
  check_bool "strong tier not proven minimum" false cut.C.proven_optimal;
  check_bool "optimal abandoned" true (cut.C.abandoned = Some C.Optimal);
  check_int "strong = 5 parts" 5 (List.length cut.C.result.C.parts);
  (* Tiers never get worse with more budget. *)
  check_bool "tier part counts monotone" true
    (List.length full.C.result.C.parts <= List.length zero.C.result.C.parts)

let test_deadline_spent_precharge () =
  let spec, view = Examples.figure3 () in
  let members = View.members view (Examples.figure3_composite view) in
  (* A pre-charge at or over the budget (a request that waited out its whole
     deadline in a server queue) degrades to the weak floor — which still
     answers with a valid sound split. *)
  let pre = C.with_deadline ~deadline_s:60.0 ~spent_s:60.0 spec members in
  check_bool "spent >= deadline answers weak" true (pre.C.tier = C.Weak);
  check_bool "strong abandoned under full pre-charge" true
    (pre.C.abandoned = Some C.Strong);
  check_bool "pre-charged floor still a valid sound split" true
    (C.Oracle.valid_split spec members pre.C.result.C.parts);
  (* An explicit zero pre-charge is the default behaviour. *)
  let zero = C.with_deadline ~deadline_s:60.0 ~spent_s:0.0 spec members in
  check_bool "zero pre-charge reaches optimal" true (zero.C.tier = C.Optimal);
  Alcotest.check_raises "negative spent_s rejected"
    (Invalid_argument "Corrector.with_deadline: spent_s must be non-negative")
    (fun () ->
      ignore (C.with_deadline ~deadline_s:1.0 ~spent_s:(-0.1) spec members));
  (* Same contract on the whole-view driver. *)
  let view', outcomes =
    C.correct_with_deadline ~deadline_s:60.0 ~spent_s:120.0 view
  in
  check_bool "pre-charged corrected view sound" true (S.is_sound view');
  let _, o = List.hd outcomes in
  check_bool "pre-charged correct_with_deadline answers weak" true
    (o.C.tier = C.Weak);
  Alcotest.check_raises "negative spent_s rejected (view driver)"
    (Invalid_argument
       "Corrector.correct_with_deadline: spent_s must be non-negative")
    (fun () -> ignore (C.correct_with_deadline ~deadline_s:1.0 ~spent_s:(-1.) view))

let test_correct_with_deadline () =
  let _, view = Examples.figure3 () in
  let view', outcomes = C.correct_with_deadline ~deadline_s:60.0 view in
  check_bool "deadline-corrected view sound" true (S.is_sound view');
  check_int "one composite corrected" 1 (List.length outcomes);
  let _, o = List.hd outcomes in
  check_bool "reached optimal under a generous deadline" true
    (o.C.tier = C.Optimal);
  (* A zero deadline still yields a sound view via the weak floor. *)
  let view0, outcomes0 = C.correct_with_deadline ~deadline_s:0.0 view in
  check_bool "zero-deadline view still sound" true (S.is_sound view0);
  let _, o0 = List.hd outcomes0 in
  check_bool "zero deadline answered weak" true (o0.C.tier = C.Weak)

(* ------------------------------------------------------------------ *)
(* Merge-based resolution (extension)                                  *)
(* ------------------------------------------------------------------ *)


let test_strong_gap_instance () =
  (* The pinned separation of strong local optimality from optimality. *)
  let spec, members = H.strong_gap_instance () in
  let weak = C.split_subset C.Weak spec members in
  let strong = C.split_subset C.Strong spec members in
  let optimal = C.split_subset C.Optimal spec members in
  check_int "weak stuck at 3" 3 (List.length weak.C.parts);
  check_int "strong stuck at 3" 3 (List.length strong.C.parts);
  check_bool "and certified strongly local optimal" true
    strong.C.certified_strong;
  Alcotest.(check (option bool)) "oracle agrees it is strongly optimal"
    (Some true)
    (C.Oracle.strongly_local_optimal spec strong.C.parts);
  check_int "but the true minimum is 2" 2 (List.length optimal.C.parts);
  (* The B&B prover finds the same minimum. *)
  let bb, proven = C.split_subset_anytime spec members in
  check_bool "B&B proves it" true proven;
  check_int "B&B parts" 2 (List.length bb.C.parts)

let test_gap_search_consistent () =
  (* Gaps are rare on random instances: a short search usually returns None;
     when it does return one, the instance must be internally consistent. *)
  match H.search_strong_gap ~tries:60 ~size:14 ~members:8 ~seed:5 () with
  | None -> ()
  | Some g ->
    check_bool "strong worse than optimal" true
      (g.H.strong_parts > g.H.optimal_parts);
    let strong = C.split_subset C.Strong g.H.gap_spec g.H.gap_members in
    check_int "reproducible" g.H.strong_parts (List.length strong.C.parts)


(* ------------------------------------------------------------------ *)
(* Interface catalog                                                    *)
(* ------------------------------------------------------------------ *)

module I = Wolves_core.Interface

let test_interface_fig1 () =
  let spec, view = Examples.figure1 () in
  let c16 = Examples.figure1_unsound_composite view in
  let iface = I.of_composite view c16 in
  check_int "two inputs" 2 (List.length iface.I.inputs);
  check_int "two outputs" 2 (List.length iface.I.outputs);
  check_int "two broken pairs" 2 (List.length iface.I.contract);
  (* Port wiring: task 4 is fed by composite 14. *)
  let t4 = Spec.task_of_name_exn spec "4:Curate Annotations" in
  let port4 = List.find (fun p -> p.I.port_task = t4) iface.I.inputs in
  Alcotest.(check (list string)) "4 fed by 14"
    [ "14:Split & Annotate" ]
    (List.map (View.composite_name view) port4.I.peers);
  (* A sound composite has an empty broken-contract list. *)
  let c14 = Option.get (View.composite_of_name view "14:Split & Annotate") in
  check_int "sound contract" 0 (List.length (I.of_composite view c14).I.contract);
  (* Catalog covers every composite and flags the unsound one. *)
  check_int "catalog size" 7 (List.length (I.of_view view));
  let md = I.to_markdown view in
  let contains needle =
    let ln = String.length needle and lh = String.length md in
    let rec go i = i + ln <= lh && (String.sub md i ln = needle || go (i + 1)) in
    go 0
  in
  check_bool "markdown mentions the unsound contract" true
    (contains "Contract: UNSOUND");
  check_bool "markdown mentions soundness" true (contains "Contract: sound");
  check_bool "source composite marked" true (contains "No inputs");
  check_bool "terminal composite marked" true (contains "No outputs")

let test_merge_resolve () =
  let _, view = Examples.figure1 () in
  let c16 = Examples.figure1_unsound_composite view in
  let view', merged = C.merge_resolve view c16 in
  check_bool "merged view sound" true (S.is_sound view');
  check_bool "merged composite larger" true
    (List.length (View.members view' merged) > 2);
  check_bool "fewer composites than before" true
    (View.n_composites view' < View.n_composites view)

let test_merge_resolve_fig3 () =
  let _, view = Examples.figure3 () in
  let t = Examples.figure3_composite view in
  let view', _merged = C.merge_resolve view t in
  check_bool "merge-resolved sound" true (S.is_sound view')

(* ------------------------------------------------------------------ *)
(* Hardness families: analytic ground truth                            *)
(* ------------------------------------------------------------------ *)

let test_blocks_family () =
  List.iter
    (fun (blocks, chains) ->
      let spec, members = H.blocks_instance ~blocks ~chains in
      let weak = C.split_subset C.Weak spec members in
      let strong = C.split_subset C.Strong spec members in
      check_int
        (Printf.sprintf "weak parts (b=%d c=%d)" blocks chains)
        (H.blocks_weak_parts ~blocks ~chains)
        (List.length weak.C.parts);
      check_int
        (Printf.sprintf "strong parts (b=%d c=%d)" blocks chains)
        (H.blocks_optimal_parts ~blocks ~chains)
        (List.length strong.C.parts);
      if 4 * (blocks + chains) + 2 <= 20 then begin
        let optimal = C.split_subset C.Optimal spec members in
        check_int "optimal matches ground truth"
          (H.blocks_optimal_parts ~blocks ~chains)
          (List.length optimal.C.parts)
      end)
    [ (1, 1); (0, 3); (1, 4); (2, 2); (3, 1) ]

let test_wide_block_family () =
  List.iter
    (fun width ->
      let spec, members = H.wide_block_instance ~width in
      let weak = C.split_subset C.Weak spec members in
      let strong = C.split_subset C.Strong spec members in
      check_int "weak = 2k+1 parts" (H.wide_block_weak_parts ~width)
        (List.length weak.C.parts);
      check_int "strong = 2 parts" (H.wide_block_optimal_parts ~width)
        (List.length strong.C.parts))
    [ 2; 3; 5; 8 ]

let test_blocks_args () =
  Alcotest.check_raises "degenerate rejected"
    (Invalid_argument "Hardness.blocks_instance: need at least two units")
    (fun () -> ignore (H.blocks_instance ~blocks:1 ~chains:0))

(* ------------------------------------------------------------------ *)
(* Quality and estimator                                               *)
(* ------------------------------------------------------------------ *)

let test_quality () =
  let spec, members = H.blocks_instance ~blocks:2 ~chains:1 in
  let cmp = Q.compare_criteria spec members in
  Alcotest.(check (option (float 0.0001))) "weak quality 3/9"
    (Some (3.0 /. 9.0)) cmp.Q.weak_quality;
  Alcotest.(check (option (float 0.0001))) "strong quality 1"
    (Some 1.0) cmp.Q.strong_quality;
  Alcotest.check_raises "ratio guards"
    (Invalid_argument "Quality.ratio: part counts must be positive") (fun () ->
      ignore (Q.ratio ~optimal_parts:0 ~parts:3))

let test_estimator_fit () =
  let spec, members = H.blocks_instance ~blocks:1 ~chains:2 in
  let features n =
    (* synthesise features at different size buckets *)
    { (E.features_of spec members) with E.size_bucket = n }
  in
  let h = E.create () in
  Alcotest.(check bool) "no fit on empty history" true
    (E.fit_runtime h C.Weak = None);
  (* Perfect quadratic law: runtime = 1e-6 * n^2, n = 2^bucket. *)
  List.iter
    (fun bucket ->
      let n = float_of_int (1 lsl bucket) in
      E.record h (features bucket) C.Weak ~runtime:(1e-6 *. n *. n) ~quality:1.0)
    [ 2; 3; 4; 5; 6 ];
  (match E.fit_runtime h C.Weak with
   | None -> Alcotest.fail "expected a fit"
   | Some fit ->
     Alcotest.(check (float 0.01)) "recovered exponent" 2.0 fit.E.exponent;
     Alcotest.(check (float 0.10)) "extrapolates to n=100"
       (1e-6 *. 100.0 *. 100.0)
       (E.predict_runtime fit ~size:100));
  Alcotest.(check bool) "criterion separation" true
    (E.fit_runtime h C.Strong = None)

let test_estimator () =
  let spec, members = H.blocks_instance ~blocks:1 ~chains:2 in
  let features = E.features_of spec members in
  let h = E.create () in
  Alcotest.(check int) "empty history" 0
    (E.estimate h features C.Weak).E.samples;
  E.record h features C.Weak ~runtime:0.010 ~quality:0.5;
  E.record h features C.Weak ~runtime:0.020 ~quality:0.7;
  E.record h features C.Strong ~runtime:0.100 ~quality:1.0;
  check_int "records" 3 (E.n_records h);
  let est = E.estimate h features C.Weak in
  check_int "2 samples" 2 est.E.samples;
  Alcotest.(check (option (float 1e-9))) "mean runtime" (Some 0.015)
    est.E.expected_runtime;
  Alcotest.(check (option (float 1e-9))) "mean quality" (Some 0.6)
    est.E.expected_quality;
  (* Fallback to the size bucket when substructure differs. *)
  let other = { features with E.density_bucket = features.E.density_bucket + 5 } in
  let fallback = E.estimate h other C.Strong in
  check_int "fallback found the size group" 1 fallback.E.samples

(* ------------------------------------------------------------------ *)
(* Properties on random instances                                      *)
(* ------------------------------------------------------------------ *)

(* Random unsound-ish instance: a generated workflow plus a random composite
   of 2..10 of its tasks. *)
let gen_instance =
  QCheck2.Gen.(
    bind (int_range 0 100_000) (fun seed ->
        bind (int_range 10 26) (fun size ->
            bind (oneofl Gen.all_families) (fun family ->
                bind (int_range 2 10) (fun k ->
                    map
                      (fun shuffle_seed -> (seed, size, family, k, shuffle_seed))
                      (int_range 0 1000))))))

let instance_of (seed, size, family, k, shuffle_seed) =
  let spec = Gen.generate family ~seed ~size in
  let rng = Wolves_workload.Prng.create shuffle_seed in
  let members =
    List.filteri (fun i _ -> i < k) (Wolves_workload.Prng.shuffle rng (Spec.tasks spec))
  in
  (spec, List.sort compare members)

let prop_weak_is_weakly_optimal =
  QCheck2.Test.make ~name:"weak corrector output is weakly local optimal"
    ~count:150 gen_instance
    (fun input ->
      let spec, members = instance_of input in
      let o = C.split_subset C.Weak spec members in
      C.Oracle.valid_split spec members o.C.parts
      && C.Oracle.weakly_local_optimal spec o.C.parts)

let prop_strong_is_strongly_optimal =
  QCheck2.Test.make ~name:"strong corrector output is strongly local optimal"
    ~count:150 gen_instance
    (fun input ->
      let spec, members = instance_of input in
      let o = C.split_subset C.Strong spec members in
      C.Oracle.valid_split spec members o.C.parts
      && C.Oracle.strongly_local_optimal spec o.C.parts = Some true)

let prop_part_count_ordering =
  QCheck2.Test.make ~name:"optimal <= strong <= weak part counts" ~count:150
    gen_instance
    (fun input ->
      let spec, members = instance_of input in
      let weak = C.split_subset C.Weak spec members in
      let strong = C.split_subset C.Strong spec members in
      let optimal = C.split_subset C.Optimal spec members in
      let w = List.length weak.C.parts
      and s = List.length strong.C.parts
      and o = List.length optimal.C.parts in
      o <= s && s <= w
      && C.Oracle.valid_split spec members optimal.C.parts)

let prop_corrected_views_sound =
  QCheck2.Test.make ~name:"correct() produces a sound view" ~count:100
    QCheck2.Gen.(pair gen_instance (oneofl [ C.Weak; C.Strong; C.Optimal ]))
    (fun (input, criterion) ->
      let seed, size, family, k, _ = input in
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Random_partition (max 2 k)) spec in
      let corrected, _ = C.correct criterion view in
      S.is_sound corrected)

let prop_minimal_core_is_minimal =
  QCheck2.Test.make ~name:"minimal unsound core is unsound and 1-minimal"
    ~count:150 gen_instance
    (fun input ->
      let spec, members = instance_of input in
      let set = Bitset.of_list (Spec.n_tasks spec) members in
      match S.minimal_unsound_core spec set with
      | None -> S.subset_sound spec set
      | Some core ->
        Bitset.subset core set && core_is_1_minimal spec core)

let prop_sound_view_preserves_paths =
  QCheck2.Test.make
    ~name:"all composites sound => literal Def 2.1 holds (one-way Prop 2.1)"
    ~count:100 gen_instance
    (fun (seed, size, family, k, _) ->
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Connected_groups (max 2 k)) spec in
      let corrected, _ = C.correct C.Strong view in
      S.is_sound corrected && S.preserves_paths corrected)

let prop_subset_io_matches_definition =
  QCheck2.Test.make ~name:"subset_io matches Def 2.2" ~count:150 gen_instance
    (fun input ->
      let spec, members = instance_of input in
      let set = Bitset.of_list (Spec.n_tasks spec) members in
      let io = S.subset_io spec set in
      let expect_in t =
        List.exists (fun p -> not (List.mem p members)) (Spec.producers spec t)
      in
      let expect_out t =
        List.exists (fun s -> not (List.mem s members)) (Spec.consumers spec t)
      in
      List.for_all
        (fun t -> List.mem t io.S.inputs = expect_in t)
        members
      && List.for_all (fun t -> List.mem t io.S.outputs = expect_out t) members)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_core"
    [ ( "soundness",
        [ Alcotest.test_case "figure 1 in/out sets" `Quick test_fig1_io;
          Alcotest.test_case "figure 1 validator report" `Quick test_fig1_validator;
          Alcotest.test_case "source/sink boundary composites" `Quick
            test_fig1_in_out_boundaries;
          Alcotest.test_case "figure 1 correction" `Quick test_fig1_correct;
          Alcotest.test_case "singletons always sound" `Quick test_singletons_sound;
          Alcotest.test_case "full task set sound" `Quick test_full_set_sound;
          Alcotest.test_case "Prop 2.1 gap (counterexample)" `Quick test_prop21_gap;
          Alcotest.test_case "naive Def 2.1 agrees" `Quick test_naive_agrees;
          Alcotest.test_case "naive check respects fuel" `Quick test_naive_fuel;
          Alcotest.test_case "unsoundness classification" `Quick
            test_classify_unsound;
          Alcotest.test_case "parallel lane counting" `Quick
            test_classify_lane_counts;
          Alcotest.test_case "minimal unsound core" `Quick
            test_minimal_unsound_core;
          qt prop_subset_io_matches_definition;
          qt prop_minimal_core_is_minimal;
          qt prop_sound_view_preserves_paths ] );
      ( "corrector",
        [ Alcotest.test_case "figure 3: weak 8, strong 5, optimal 5" `Quick
            test_fig3_counts;
          Alcotest.test_case "figure 3: paper spot checks" `Quick
            test_fig3_spot_checks;
          Alcotest.test_case "checks vs probes" `Quick test_checks_vs_probes;
          Alcotest.test_case "sound composites untouched" `Quick
            test_sound_composite_untouched;
          Alcotest.test_case "split_composite at view level" `Quick
            test_split_composite_view_level;
          Alcotest.test_case "invalid inputs rejected" `Quick test_invalid_inputs;
          Alcotest.test_case "deadline tiers on figure 3" `Quick
            test_deadline_tiers;
          Alcotest.test_case "correct_with_deadline" `Quick
            test_correct_with_deadline;
          Alcotest.test_case "deadline spent_s pre-charge" `Quick
            test_deadline_spent_precharge;
          qt prop_weak_is_weakly_optimal;
          qt prop_strong_is_strongly_optimal;
          qt prop_part_count_ordering;
          qt prop_corrected_views_sound ] );
      ( "merge-resolve",
        [ Alcotest.test_case "figure 1" `Quick test_merge_resolve;
          Alcotest.test_case "figure 3" `Quick test_merge_resolve_fig3 ] );
      ( "hardness",
        [ Alcotest.test_case "blocks family ground truth" `Quick test_blocks_family;
          Alcotest.test_case "wide block family" `Quick test_wide_block_family;
          Alcotest.test_case "argument validation" `Quick test_blocks_args;
          Alcotest.test_case "strong vs optimal gap gadget" `Quick
            test_strong_gap_instance;
          Alcotest.test_case "random gap search" `Quick test_gap_search_consistent ] );
      ( "interface",
        [ Alcotest.test_case "figure 1 catalog" `Quick test_interface_fig1 ] );
      ( "quality+estimator",
        [ Alcotest.test_case "quality ratios" `Quick test_quality;
          Alcotest.test_case "estimator averages and fallback" `Quick
            test_estimator;
          Alcotest.test_case "estimator scaling-law fit" `Quick
            test_estimator_fit ] ) ]
