(* Tests for the execution engine: scheduling bounds, failure propagation,
   dataflow (content-hash) semantics, and the bridge into the provenance
   store. *)

open Wolves_workflow
module Engine = Wolves_engine.Engine
module Store = Wolves_provenance.Store
module P = Wolves_provenance.Provenance
module Gen = Wolves_workload.Generate
module Bitset = Wolves_graph.Bitset

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let fig1 () = Examples.figure1_spec ()

let cfg ?(workers = 1) ?(failure_rate = 0.0) ?(seed = 0) ?(salts = []) () =
  { Engine.default_config with Engine.workers; failure_rate; seed; salts }

let test_sequential_run () =
  let spec = fig1 () in
  let trace = Engine.run ~config:(cfg ()) spec in
  check_float "makespan = total work on 1 worker"
    (Engine.total_work (cfg ()) spec)
    trace.Engine.makespan;
  check_int "every task has an event" 12 (List.length trace.Engine.events);
  check_bool "all completed" true
    (List.for_all
       (fun e -> match e.Engine.outcome with Engine.Completed _ -> true | _ -> false)
       trace.Engine.events)

let test_parallel_speedup () =
  let spec = fig1 () in
  let one = Engine.run ~config:(cfg ~workers:1 ()) spec in
  let many = Engine.run ~config:(cfg ~workers:4 ()) spec in
  let unlimited = Engine.run ~config:(cfg ~workers:64 ()) spec in
  check_bool "parallel not slower" true
    (many.Engine.makespan <= one.Engine.makespan);
  check_float "unlimited workers = critical path"
    (Engine.critical_path_length (cfg ()) spec)
    unlimited.Engine.makespan;
  check_float "busy time invariant" one.Engine.busy_time many.Engine.busy_time

let test_event_consistency () =
  let spec = fig1 () in
  let trace = Engine.run ~config:(cfg ~workers:3 ()) spec in
  (* A task starts only after all its producers finished. *)
  let finish = Hashtbl.create 12 in
  List.iter
    (fun e -> Hashtbl.replace finish e.Engine.task e.Engine.finished)
    trace.Engine.events;
  List.iter
    (fun e ->
      List.iter
        (fun p ->
          check_bool "producer finished first" true
            (Hashtbl.find finish p <= e.Engine.started +. 1e-9))
        (Spec.producers spec e.Engine.task))
    trace.Engine.events;
  (* Never more than [workers] tasks running at once: check by sweeping. *)
  let overlaps at =
    List.length
      (List.filter
         (fun e ->
           e.Engine.started < at -. 1e-9
           && at +. 1e-9 < e.Engine.finished
           && e.Engine.started < e.Engine.finished)
         trace.Engine.events)
  in
  List.iter
    (fun e ->
      check_bool "worker bound respected" true
        (overlaps (e.Engine.started +. 0.5) <= 3))
    trace.Engine.events

let test_failure_propagation () =
  let spec = fig1 () in
  (* Find a seed that crashes the split task; then everything downstream of
     it is Not_run. *)
  let t2 = Spec.task_of_name_exn spec "2:Split Entries" in
  let rec find_seed seed =
    if seed > 50_000 then Alcotest.fail "no crashing seed found"
    else
      let trace = Engine.run ~config:(cfg ~failure_rate:0.08 ~seed ()) spec in
      if Engine.outcome_of trace t2 = Engine.Crashed then trace else find_seed (seed + 1)
  in
  let trace = find_seed 0 in
  let downstream = P.task_ancestors spec t2 in
  ignore downstream;
  List.iter
    (fun t ->
      if t <> t2 && Spec.depends spec t2 t then
        check_bool "downstream skipped or crashed... skipped" true
          (Engine.outcome_of trace t = Engine.Not_run))
    (Spec.tasks spec)

let test_dataflow_semantics () =
  let spec = fig1 () in
  let base = Engine.run ~config:(cfg ()) spec in
  (* Salting task 2 changes exactly the outputs of its descendants. *)
  let t2 = Spec.task_of_name_exn spec "2:Split Entries" in
  let salted = Engine.run ~config:(cfg ~salts:[ (t2, 1) ] ()) spec in
  List.iter
    (fun t ->
      let changed =
        Engine.output_value base t <> Engine.output_value salted t
      in
      check_bool
        (Printf.sprintf "output of %s changed iff descendant of 2"
           (Spec.task_name spec t))
        (Spec.depends spec t2 t) changed)
    (Spec.tasks spec);
  (* Determinism: same config, same values. *)
  let again = Engine.run ~config:(cfg ()) spec in
  List.iter
    (fun t ->
      check_bool "deterministic" true
        (Engine.output_value base t = Engine.output_value again t))
    (Spec.tasks spec)

let test_store_bridge () =
  let spec = fig1 () in
  let store = Store.create spec in
  let trace = Engine.run ~config:(cfg ~failure_rate:0.2 ~seed:7 ()) spec in
  match Store.record_run store (Engine.statuses trace) with
  | Ok id ->
    check_int "statuses accepted" 0 id;
    (* run provenance from the store matches the engine's completed set *)
    List.iter
      (fun t ->
        let completed =
          match Engine.outcome_of trace t with
          | Engine.Completed _ -> true
          | _ -> false
        in
        check_bool "status agreement" completed
          (Store.status store id t = Store.Succeeded))
      (Spec.tasks spec)
  | Error msg -> Alcotest.fail msg

let test_gantt () =
  let spec = fig1 () in
  let trace = Engine.run ~config:(cfg ~workers:3 ()) spec in
  let chart = Engine.gantt ~width:40 trace in
  let lines = String.split_on_char '\n' chart in
  (* one row per executed task + the time axis *)
  check_int "rows" (12 + 1 + 1) (List.length lines);
  check_bool "has bars" true
    (List.exists (fun l -> String.contains l '#') lines);
  (* a crashing run draws x bars *)
  let rec crashing seed =
    let t = Engine.run ~config:(cfg ~failure_rate:0.3 ~seed ()) spec in
    if List.exists (fun e -> e.Engine.outcome = Engine.Crashed) t.Engine.events
    then t
    else crashing (seed + 1)
  in
  let t = crashing 1 in
  check_bool "crashes marked" true (String.contains (Engine.gantt t) 'x')

let test_bad_config () =
  let spec = fig1 () in
  Alcotest.check_raises "no workers"
    (Invalid_argument "Engine.run: need at least one worker") (fun () ->
      ignore (Engine.run ~config:{ (cfg ()) with Engine.workers = 0 } spec));
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Engine.run: durations must be positive") (fun () ->
      ignore
        (Engine.run
           ~config:{ (cfg ()) with Engine.duration = (fun _ -> 0.0) }
           spec));
  let rate_msg =
    Invalid_argument "Engine.run: failure_rate must be within [0, 1]"
  in
  Alcotest.check_raises "failure rate above 1" rate_msg (fun () ->
      ignore
        (Engine.run ~config:{ (cfg ()) with Engine.failure_rate = 1.5 } spec));
  Alcotest.check_raises "negative failure rate" rate_msg (fun () ->
      ignore
        (Engine.run ~config:{ (cfg ()) with Engine.failure_rate = -0.1 } spec));
  Alcotest.check_raises "nan failure rate" rate_msg (fun () ->
      ignore
        (Engine.run
           ~config:{ (cfg ()) with Engine.failure_rate = Float.nan }
           spec));
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Engine.run: retries must be non-negative") (fun () ->
      ignore (Engine.run ~config:{ (cfg ()) with Engine.retries = -1 } spec));
  Alcotest.check_raises "zero backoff"
    (Invalid_argument "Engine.run: backoff must be positive") (fun () ->
      ignore (Engine.run ~config:{ (cfg ()) with Engine.backoff = 0.0 } spec));
  Alcotest.check_raises "zero timeout"
    (Invalid_argument "Engine.run: timeout must be positive") (fun () ->
      ignore
        (Engine.run ~config:{ (cfg ()) with Engine.timeout = Some 0.0 } spec))

(* --- fault tolerance: retries, timeouts, checkpoint/resume ---------- *)

let test_retry_recovery () =
  let spec = fig1 () in
  (* A seed where at least one task crashes and the retry budget recovers
     every crash. *)
  let rec find seed =
    if seed > 50_000 then Alcotest.fail "no recovering seed found"
    else begin
      let config =
        { (cfg ~failure_rate:0.15 ~seed ()) with
          Engine.retries = 3;
          backoff = 0.5 }
      in
      let trace = Engine.run ~config spec in
      let retried =
        List.filter (fun t -> Engine.n_attempts trace t > 1) (Spec.tasks spec)
      in
      if
        retried <> []
        && List.for_all
             (fun t -> Engine.output_value trace t <> None)
             (Spec.tasks spec)
      then (trace, retried)
      else find (seed + 1)
    end
  in
  let trace, retried = find 0 in
  List.iter
    (fun t ->
      let evs =
        List.filter (fun e -> e.Engine.task = t) trace.Engine.events
      in
      List.iteri
        (fun i e ->
          if i < List.length evs - 1 then
            check_bool "non-final attempts crashed" true
              (e.Engine.outcome = Engine.Crashed)
          else
            check_bool "final attempt completed" true
              (match e.Engine.outcome with
               | Engine.Completed _ -> true
               | _ -> false))
        evs;
      check_bool "outcome_of reports the final attempt" true
        (match Engine.outcome_of trace t with
         | Engine.Completed _ -> true
         | _ -> false))
    retried;
  (* Output values are content hashes: independent of the failure path, so
     a recovered run equals a clean one. *)
  let clean = Engine.run ~config:(cfg ()) spec in
  List.iter
    (fun t ->
      check_bool "recovered values = clean values" true
        (Engine.output_value trace t = Engine.output_value clean t))
    (Spec.tasks spec)

let test_timeout () =
  let spec = fig1 () in
  let t2 = Spec.task_of_name_exn spec "2:Split Entries" in
  let config =
    { (cfg ()) with
      Engine.duration = (fun t -> if t = t2 then 10.0 else 1.0);
      timeout = Some 5.0;
      retries = 2 }
  in
  let trace = Engine.run ~config spec in
  check_bool "runaway task timed out" true
    (Engine.outcome_of trace t2 = Engine.Timed_out);
  check_int "timeouts are deterministic, not retried" 1
    (Engine.n_attempts trace t2);
  List.iter
    (fun t ->
      if t <> t2 && Spec.depends spec t2 t then
        check_bool "downstream of the timeout skipped" true
          (Engine.outcome_of trace t = Engine.Not_run))
    (Spec.tasks spec);
  check_bool "Timed_out maps to Store.Failed" true
    (List.assoc t2 (Engine.statuses trace) = Store.Failed);
  (* The worker stays occupied up to the cap, no longer. *)
  let ev =
    List.find (fun e -> e.Engine.task = t2) trace.Engine.events
  in
  check_float "cut at the cap" 5.0 (ev.Engine.finished -. ev.Engine.started)

let test_resume_after_crash () =
  let spec = fig1 () in
  let t2 = Spec.task_of_name_exn spec "2:Split Entries" in
  let rec find_seed seed =
    if seed > 50_000 then Alcotest.fail "no crashing seed found"
    else
      let trace = Engine.run ~config:(cfg ~failure_rate:0.08 ~seed ()) spec in
      if Engine.outcome_of trace t2 = Engine.Crashed then trace
      else find_seed (seed + 1)
  in
  let prior = find_seed 0 in
  let completed_before =
    List.filter
      (fun t -> Engine.output_value prior t <> None)
      (Spec.tasks spec)
  in
  let resumed = Engine.resume ~config:(cfg ()) prior in
  check_int "reused exactly the completed prior tasks"
    (List.length completed_before)
    (List.length (Engine.reused_tasks resumed));
  check_int "re-executed exactly the rest"
    (Spec.n_tasks spec - List.length completed_before)
    (List.length (Engine.executed_tasks resumed));
  let fresh = Engine.run ~config:(cfg ()) spec in
  List.iter
    (fun t ->
      check_bool "resumed values = fresh zero-failure values" true
        (Engine.output_value resumed t = Engine.output_value fresh t))
    (Spec.tasks spec)

let test_resume_salted_cone () =
  let spec = fig1 () in
  let prior = Engine.run ~config:(cfg ()) spec in
  let t2 = Spec.task_of_name_exn spec "2:Split Entries" in
  let resumed = Engine.resume ~config:(cfg ~salts:[ (t2, 5) ] ()) prior in
  (* Even though the prior run fully succeeded, salting invalidates exactly
     the salted task's descendant cone. *)
  List.iter
    (fun t ->
      check_bool
        (Printf.sprintf "%s re-executed iff descendant of 2"
           (Spec.task_name spec t))
        (Spec.depends spec t2 t)
        (Engine.n_attempts resumed t >= 1))
    (Spec.tasks spec);
  let fresh = Engine.run ~config:(cfg ~salts:[ (t2, 5) ] ()) spec in
  List.iter
    (fun t ->
      check_bool "salted resume = salted fresh run" true
        (Engine.output_value resumed t = Engine.output_value fresh t))
    (Spec.tasks spec)

let test_trace_roundtrip () =
  let spec = fig1 () in
  let config =
    { (cfg ~failure_rate:0.3 ~seed:3 ()) with
      Engine.retries = 1;
      backoff = 0.5 }
  in
  let trace = Engine.run ~config spec in
  let path = Filename.temp_file "wolves_trace" ".csv" in
  (match Engine.save_trace path trace with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "save_trace: %s" msg);
  (match Engine.load_trace spec path with
   | Error msg -> Alcotest.failf "load_trace: %s" msg
   | Ok { Engine.trace = loaded; dropped_row } ->
     check_bool "clean checkpoint drops nothing" true (dropped_row = None);
     check_int "same event count"
       (List.length trace.Engine.events)
       (List.length loaded.Engine.events);
     check_float "same makespan" trace.Engine.makespan loaded.Engine.makespan;
     check_float "same busy time" trace.Engine.busy_time
       loaded.Engine.busy_time;
     List.iter
       (fun t ->
         check_bool "same final outcome" true
           (Engine.outcome_of loaded t = Engine.outcome_of trace t))
       (Spec.tasks spec);
     (* Resuming from the reloaded checkpoint completes the workflow with
        the same values as a fresh zero-failure run. *)
     let resumed = Engine.resume ~config:(cfg ()) loaded in
     let fresh = Engine.run ~config:(cfg ()) spec in
     List.iter
       (fun t ->
         check_bool "resume-from-disk = fresh run" true
           (Engine.output_value resumed t = Engine.output_value fresh t))
       (Spec.tasks spec));
  Sys.remove path;
  match Engine.load_trace spec "/nonexistent/trace.csv" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing trace file"

(* A checkpoint torn by a crash mid-write must reload to its committed
   prefix (reporting the torn tail), while corruption that is not a crash
   tail — a missing or mangled committed row — must be refused. *)
let trace_header_line () = "task,attempt,started,finished,outcome,value"

let test_torn_checkpoint () =
  let spec = fig1 () in
  let trace = Engine.run ~config:(cfg ()) spec in
  let full = Engine.trace_to_string trace in
  let n_events = List.length trace.Engine.events in
  let load s = Engine.trace_of_string spec s in
  let events_prefix loaded =
    (* The loaded events must be a prefix of the genuine event list. *)
    let rec is_prefix got want =
      match (got, want) with
      | [], _ -> true
      | g :: gs, w :: ws ->
        g.Engine.task = w.Engine.task
        && g.Engine.attempt = w.Engine.attempt
        && g.Engine.outcome = w.Engine.outcome
        && is_prefix gs ws
      | _ :: _, [] -> false
    in
    is_prefix loaded.Engine.events trace.Engine.events
  in
  let lines = String.split_on_char '\n' full |> List.filter (( <> ) "") in
  let data_rows = List.filteri (fun i _ -> i > 0) lines in
  let data_rows = List.filteri (fun i _ -> i < n_events) data_rows in
  let without_footer =
    String.concat "\n" (trace_header_line () :: data_rows) ^ "\n"
  in
  (* Legacy footer-less checkpoint, all rows intact: accepted, none dropped. *)
  (match load without_footer with
   | Error msg -> Alcotest.failf "legacy parse: %s" msg
   | Ok { Engine.trace = t; dropped_row } ->
     check_bool "legacy drops nothing" true (dropped_row = None);
     check_int "legacy event count" n_events (List.length t.Engine.events));
  (* Crash mid-last-row: committed prefix survives, torn tail reported. *)
  (match load (String.sub without_footer 0 (String.length without_footer - 9))
   with
   | Error msg -> Alcotest.failf "torn-row parse: %s" msg
   | Ok ({ Engine.trace = t; dropped_row } as l) ->
     check_bool "torn tail reported" true (dropped_row <> None);
     check_int "one row dropped" (n_events - 1) (List.length t.Engine.events);
     check_bool "prefix preserved" true (events_prefix l.Engine.trace));
  (* Crash mid-footer: every row is committed; the torn marker is reported. *)
  (match load (without_footer ^ "#en") with
   | Error msg -> Alcotest.failf "torn-footer parse: %s" msg
   | Ok { Engine.trace = t; dropped_row } ->
     check_bool "torn footer reported" true (dropped_row = Some "#en");
     check_int "no rows lost" n_events (List.length t.Engine.events));
  (* A complete footer whose count disagrees is corruption, not a crash. *)
  let splice rows = String.concat "\n" (trace_header_line () :: rows) ^ "\n" in
  let missing_middle =
    splice (List.filteri (fun i _ -> i <> n_events / 2) data_rows)
    ^ Printf.sprintf "#end,%d\n" n_events
  in
  (match load missing_middle with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing committed row accepted");
  (* A mangled row under an intact footer is corruption too. *)
  let mangled =
    splice
      (List.mapi
         (fun i row -> if i = n_events / 2 then "garbage,row" else row)
         data_rows)
    ^ Printf.sprintf "#end,%d\n" n_events
  in
  (match load mangled with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "mangled committed row accepted");
  (* Footer-less with a bad row *followed by committed rows* is not a torn
     tail either — crashes only tear the end. *)
  (match
     load
       (splice
          (List.mapi
             (fun i row -> if i = 1 then "garbage,row" else row)
             data_rows))
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "mid-file damage accepted as torn tail");
  (* Crash at *every* byte offset: the loader either refuses or returns a
     genuine committed prefix — never an event that was not written. *)
  let len = String.length full in
  for cut = 0 to len - 1 do
    match load (String.sub full 0 cut) with
    | Error _ -> ()
    | Ok l ->
      if not (events_prefix l.Engine.trace) then
        Alcotest.failf "cut at byte %d surfaced non-genuine events" cut
  done;
  (* The same torn tail through the file-based loader, and resume from the
     recovered prefix completes the workflow. *)
  let path = Filename.temp_file "wolves_torn" ".csv" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 20)));
  (match Engine.load_trace spec path with
   | Error msg -> Alcotest.failf "torn file load: %s" msg
   | Ok { Engine.trace = recovered; dropped_row } ->
     check_bool "file torn tail reported" true (dropped_row <> None);
     let resumed = Engine.resume ~config:(cfg ()) recovered in
     let fresh = Engine.run ~config:(cfg ()) spec in
     List.iter
       (fun t ->
         check_bool "resume after torn checkpoint = fresh run" true
           (Engine.output_value resumed t = Engine.output_value fresh t))
       (Spec.tasks spec));
  Sys.remove path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* Store-backed checkpoints: tearing the newest record's tail on disk must
   recover to the previous checkpoint, and resume from it. *)
let test_torn_checkpoint_store () =
  let spec = fig1 () in
  let slow = Engine.run ~config:(cfg ~workers:1 ()) spec in
  let fast = Engine.run ~config:(cfg ~workers:64 ()) spec in
  check_bool "checkpoints distinguishable" true
    (slow.Engine.makespan > fast.Engine.makespan);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "wolves_ckpt_store"
  in
  rm_rf dir;
  (match Engine.save_trace_store dir ~id:"run" slow with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "first save: %s" msg);
  (match Engine.save_trace_store dir ~id:"run" fast with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "second save: %s" msg);
  (match Engine.load_trace_store spec dir ~id:"run" with
   | Error msg -> Alcotest.failf "load newest: %s" msg
   | Ok { Engine.trace = t; _ } ->
     check_float "newest checkpoint wins" fast.Engine.makespan
       t.Engine.makespan);
  (* Tear the tail of the (single) populated segment: the second record
     loses its end, as if the process died mid-append. *)
  let seg =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seg")
    |> List.map (fun f -> Filename.concat dir f)
    |> function
    | [ f ] -> f
    | l -> Alcotest.failf "expected one segment, found %d" (List.length l)
  in
  let content = In_channel.with_open_bin seg In_channel.input_all in
  Out_channel.with_open_bin seg (fun oc ->
      Out_channel.output_string oc
        (String.sub content 0 (String.length content - 13)));
  (match Engine.load_trace_store spec dir ~id:"run" with
   | Error msg -> Alcotest.failf "load after tear: %s" msg
   | Ok { Engine.trace = recovered; dropped_row } ->
     check_float "recovered the previous checkpoint" slow.Engine.makespan
       recovered.Engine.makespan;
     check_bool "record itself is whole" true (dropped_row = None);
     let resumed = Engine.resume ~config:(cfg ()) recovered in
     let fresh = Engine.run ~config:(cfg ()) spec in
     List.iter
       (fun t ->
         check_bool "resume from recovered store = fresh run" true
           (Engine.output_value resumed t = Engine.output_value fresh t))
       (Spec.tasks spec));
  rm_rf dir

(* Chaos test: after crash+retry runs, the store's influence answers match
   salted-replay ground truth exactly — no spurious, no missing. *)
let test_chaos_influence_exact () =
  let spec = Gen.generate Gen.Layered ~seed:9 ~size:14 in
  let store = Store.create spec in
  let config ?(salts = []) seed =
    { (cfg ~workers:2 ~failure_rate:0.25 ~seed ~salts ()) with
      Engine.retries = 2;
      backoff = 0.5 }
  in
  let runs =
    List.map
      (fun seed ->
        let trace = Engine.run ~config:(config seed) spec in
        match Store.record_run store (Engine.statuses trace) with
        | Ok id -> (seed, id, trace)
        | Error msg -> Alcotest.failf "record_run: %s" msg)
      [ 1; 2; 3; 4 ]
  in
  check_bool "chaos actually injected some crashes" true
    (List.exists
       (fun (_, _, trace) ->
         List.exists
           (fun e -> e.Engine.outcome = Engine.Crashed)
           trace.Engine.events)
       runs);
  let spurious = ref 0 and missing = ref 0 in
  List.iter
    (fun x ->
      let replays =
        List.map
          (fun (seed, id, base) ->
            (id, base, Engine.run ~config:(config ~salts:[ (x, 77) ] seed) spec))
          runs
      in
      List.iter
        (fun y ->
          if x <> y then begin
            let influenced = Store.runs_where_influences store x y in
            List.iter
              (fun (id, base, replay) ->
                let claimed = List.mem id influenced in
                let truth =
                  match
                    (Engine.output_value base y, Engine.output_value replay y)
                  with
                  | Some a, Some b -> a <> b
                  | _ -> false
                in
                if claimed && not truth then incr spurious;
                if truth && not claimed then incr missing)
              replays
          end)
        (Spec.tasks spec))
    (Spec.tasks spec);
  check_int "no spurious influence answers" 0 !spurious;
  check_int "no missing influence answers" 0 !missing

(* Properties over generated workflows. *)
let gen_spec =
  QCheck2.Gen.(
    map
      (fun (seed, size) ->
        (seed, Gen.generate (List.nth Gen.all_families (seed mod 4)) ~seed ~size))
      (pair (int_range 0 100_000) (int_range 5 60)))

let prop_makespan_bounds =
  QCheck2.Test.make ~name:"critical path <= makespan <= total work" ~count:80
    QCheck2.Gen.(pair gen_spec (int_range 1 8))
    (fun ((seed, spec), workers) ->
      let config =
        { Engine.default_config with
          Engine.workers;
          duration = (fun t -> 1.0 +. float_of_int ((t + seed) mod 5)) }
      in
      let trace = Engine.run ~config spec in
      let cp = Engine.critical_path_length config spec in
      let work = Engine.total_work config spec in
      cp -. 1e-6 <= trace.Engine.makespan
      && trace.Engine.makespan <= work +. 1e-6
      && abs_float (trace.Engine.busy_time -. work) < 1e-6)

let prop_statuses_always_consistent =
  QCheck2.Test.make
    ~name:"engine traces are always accepted by the provenance store"
    ~count:80
    QCheck2.Gen.(pair gen_spec (int_range 0 100))
    (fun ((_, spec), seed) ->
      let trace =
        Engine.run ~config:(cfg ~failure_rate:0.3 ~seed ()) spec
      in
      match Store.record_run (Store.create spec) (Engine.statuses trace) with
      | Ok _ -> true
      | Error _ -> false)

let prop_salt_changes_exactly_descendants =
  QCheck2.Test.make
    ~name:"salting a task changes exactly its descendants' outputs" ~count:60
    QCheck2.Gen.(pair gen_spec (int_range 0 1000))
    (fun ((_, spec), pick) ->
      let target = pick mod Spec.n_tasks spec in
      let base = Engine.run ~config:(cfg ()) spec in
      let salted = Engine.run ~config:(cfg ~salts:[ (target, 99) ] ()) spec in
      List.for_all
        (fun t ->
          (Engine.output_value base t <> Engine.output_value salted t)
          = Spec.depends spec target t)
        (Spec.tasks spec))

(* Resuming a crashed trace with failures off is indistinguishable from a
   fresh zero-failure run — the checkpoint reuse is semantically invisible. *)
let prop_resume_equals_fresh =
  QCheck2.Test.make
    ~name:"resume of a crashed trace = fresh zero-failure run" ~count:60
    QCheck2.Gen.(pair gen_spec (int_range 0 200))
    (fun ((_, spec), seed) ->
      let prior = Engine.run ~config:(cfg ~failure_rate:0.3 ~seed ()) spec in
      let resumed = Engine.resume ~config:(cfg ()) prior in
      let fresh = Engine.run ~config:(cfg ()) spec in
      List.for_all
        (fun t ->
          Engine.output_value resumed t = Engine.output_value fresh t)
        (Spec.tasks spec))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_engine"
    [ ( "engine",
        [ Alcotest.test_case "sequential run" `Quick test_sequential_run;
          Alcotest.test_case "parallel speedup and bounds" `Quick
            test_parallel_speedup;
          Alcotest.test_case "event consistency" `Quick test_event_consistency;
          Alcotest.test_case "failure propagation" `Quick test_failure_propagation;
          Alcotest.test_case "dataflow semantics" `Quick test_dataflow_semantics;
          Alcotest.test_case "store bridge" `Quick test_store_bridge;
          Alcotest.test_case "gantt rendering" `Quick test_gantt;
          Alcotest.test_case "config validation" `Quick test_bad_config;
          qt prop_makespan_bounds;
          qt prop_statuses_always_consistent;
          qt prop_salt_changes_exactly_descendants ] );
      ( "fault tolerance",
        [ Alcotest.test_case "retry recovery" `Quick test_retry_recovery;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "resume after crash" `Quick
            test_resume_after_crash;
          Alcotest.test_case "resume with salted cone" `Quick
            test_resume_salted_cone;
          Alcotest.test_case "trace save/load round-trip" `Quick
            test_trace_roundtrip;
          Alcotest.test_case "torn checkpoint recovery" `Quick
            test_torn_checkpoint;
          Alcotest.test_case "torn store checkpoint" `Quick
            test_torn_checkpoint_store;
          Alcotest.test_case "chaos influence exactness" `Slow
            test_chaos_influence_exact;
          qt prop_resume_equals_fresh ] ) ]
