(* Unit and property tests for the graph substrate (Bitset, Digraph, Algo,
   Reach, Dot). *)

module Bitset = Wolves_graph.Bitset
module Digraph = Wolves_graph.Digraph
module Algo = Wolves_graph.Algo
module Reach = Wolves_graph.Reach
module Dot = Wolves_graph.Dot
module Paths = Wolves_graph.Paths
module Dominators = Wolves_graph.Dominators
module Interval = Wolves_graph.Interval
module Spec = Wolves_workflow.Spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_int_list = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check_bool "fresh set empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check_int "cardinal" 4 (Bitset.cardinal s);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  check_bool "removed" false (Bitset.mem s 63);
  check_int_list "elements sorted" [ 0; 64; 99 ] (Bitset.elements s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset.add: 10 out of [0, 10)") (fun () ->
      Bitset.add s 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset.mem: -1 out of [0, 10)")
    (fun () -> ignore (Bitset.mem s (-1)))

let test_bitset_fill_clear () =
  let s = Bitset.create 130 in
  Bitset.fill s;
  check_int "fill cardinal" 130 (Bitset.cardinal s);
  check_bool "last member" true (Bitset.mem s 129);
  Bitset.clear s;
  check_bool "cleared" true (Bitset.is_empty s)

let test_bitset_fill_word_boundary () =
  (* capacity = multiple of the word size: the tail mask must not erase. *)
  let s = Bitset.create 126 in
  Bitset.fill s;
  check_int "fill at word boundary" 126 (Bitset.cardinal s)

let test_bitset_set_ops () =
  let a = Bitset.of_list 20 [ 1; 2; 3; 10 ] in
  let b = Bitset.of_list 20 [ 3; 10; 15 ] in
  check_int_list "union" [ 1; 2; 3; 10; 15 ] (Bitset.elements (Bitset.union a b));
  check_int_list "inter" [ 3; 10 ] (Bitset.elements (Bitset.inter a b));
  check_int_list "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  check_bool "subset no" false (Bitset.subset a b);
  check_bool "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  check_bool "disjoint no" false (Bitset.disjoint a b);
  check_bool "disjoint yes" true
    (Bitset.disjoint (Bitset.diff a b) (Bitset.diff b a))

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 5 and b = Bitset.create 6 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitset.union_into: capacity mismatch (5 vs 6)")
    (fun () -> Bitset.union_into ~into:a b)

let test_bitset_choose_fold () =
  let s = Bitset.of_list 50 [ 42; 7; 13 ] in
  Alcotest.(check (option int)) "choose = min" (Some 7) (Bitset.choose s);
  check_int "fold sum" 62 (Bitset.fold ( + ) s 0);
  check_bool "for_all" true (Bitset.for_all (fun i -> i > 0) s);
  check_bool "exists" true (Bitset.exists (fun i -> i = 42) s);
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose (Bitset.create 3))

(* The counter-backed early-exit tests: subset/disjoint must stop scanning
   at the first violating word, not wander on to the end of kiloword sets.
   Both sets span 100 words; the violation sits in word 0. *)
let test_bitset_subset_early_exit () =
  let n = 6400 in
  let a = Bitset.of_list n [ 0; 6399 ] in
  let b = Bitset.of_list n [ 6399 ] in
  let scans f =
    let before = Bitset.words_scanned () in
    let v = f () in
    (v, Bitset.words_scanned () - before)
  in
  (* A positive subset check must visit every word: that's the reference
     count the early exits are measured against (the word size is an
     implementation detail, so derive it rather than hardcode it). *)
  let v, full = scans (fun () -> Bitset.subset b a) in
  check_bool "is a subset" true v;
  check_bool "full scan covers many words" true (full > 50);
  let v, scanned = scans (fun () -> Bitset.subset a b) in
  check_bool "not a subset" false v;
  check_int "subset stopped at word 0" 1 scanned;
  let v, scanned = scans (fun () -> Bitset.disjoint a b) in
  check_bool "not disjoint" false v;
  check_int "disjoint stopped at the shared last word" full scanned;
  let c = Bitset.of_list n [ 0 ] in
  let v, scanned = scans (fun () -> Bitset.disjoint a c) in
  check_bool "overlap in word 0" false v;
  check_int "disjoint stopped at word 0" 1 scanned

(* for_all/exists must stop visiting members once the answer is settled. *)
let test_bitset_quantifier_early_exit () =
  let s = Bitset.of_list 6400 (List.init 100 (fun i -> i * 64)) in
  let visited = ref 0 in
  check_bool "exists finds the first member" true
    (Bitset.exists (fun i -> incr visited; i = 0) s);
  check_int "exists visited one member" 1 !visited;
  visited := 0;
  check_bool "for_all fails on the first member" false
    (Bitset.for_all (fun i -> incr visited; i > 0) s);
  check_int "for_all visited one member" 1 !visited;
  visited := 0;
  check_bool "for_all sweeps when it holds" true
    (Bitset.for_all (fun i -> incr visited; i mod 64 = 0) s);
  check_int "for_all visited every member" 100 !visited

(* The cache-blocked multi-source union agrees with folding union_into. *)
let union_many_agrees =
  QCheck2.Test.make ~name:"union_many_into = folded union_into" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 600) (list_size (int_range 0 6) (list (int_bound 599))))
    (fun (n, sources) ->
      let sources = List.map (List.filter (fun x -> x < n)) sources in
      let sets = List.map (Bitset.of_list n) sources in
      let blocked = Bitset.create n in
      Bitset.union_many_into ~into:blocked (Array.of_list sets);
      let folded = Bitset.create n in
      List.iter (fun s -> Bitset.union_into ~into:folded s) sets;
      Bitset.equal blocked folded)

(* A simple model-based property: bitset ops agree with list-set ops. *)
let bitset_model_prop =
  QCheck2.Test.make ~name:"bitset agrees with list-set model" ~count:200
    QCheck2.Gen.(
      pair (list (int_bound 199)) (list (int_bound 199)))
    (fun (xs, ys) ->
      let module S = Set.Make (Int) in
      let sx = S.of_list xs and sy = S.of_list ys in
      let bx = Bitset.of_list 200 xs and by = Bitset.of_list 200 ys in
      S.elements (S.union sx sy) = Bitset.elements (Bitset.union bx by)
      && S.elements (S.inter sx sy) = Bitset.elements (Bitset.inter bx by)
      && S.elements (S.diff sx sy) = Bitset.elements (Bitset.diff bx by)
      && S.cardinal sx = Bitset.cardinal bx
      && S.subset sx sy = Bitset.subset bx by
      && S.disjoint sx sy = Bitset.disjoint bx by)

(* iter uses lowest-set-bit extraction; pin it against the straightforward
   per-index scan, and against elements/fold, across word boundaries. *)
let bitset_iter_prop =
  QCheck2.Test.make ~name:"iter agrees with per-index scan" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 200) (list (int_bound 199)))
    (fun (n, xs) ->
      let xs = List.filter (fun x -> x < n) xs in
      let s = Bitset.of_list n xs in
      let via_iter = ref [] in
      Bitset.iter (fun i -> via_iter := i :: !via_iter) s;
      let via_iter = List.rev !via_iter in
      let via_scan =
        List.filter (fun i -> Bitset.mem s i) (List.init n Fun.id)
      in
      via_iter = via_scan
      && via_iter = Bitset.elements s
      && via_iter
         = List.rev (Bitset.fold (fun i acc -> i :: acc) s []))

(* ------------------------------------------------------------------ *)
(* Digraph                                                             *)
(* ------------------------------------------------------------------ *)

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Digraph.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_digraph_build () =
  let g = diamond () in
  check_int "nodes" 4 (Digraph.n_nodes g);
  check_int "edges" 4 (Digraph.n_edges g);
  check_int_list "succ 0" [ 0; 1; 2; 3 ] (List.sort compare (0 :: 3 :: Digraph.succ g 0));
  check_int_list "pred 3" [ 1; 2 ] (List.sort compare (Digraph.pred g 3));
  check_bool "mem_edge" true (Digraph.mem_edge g 0 1);
  check_bool "mem_edge rev" false (Digraph.mem_edge g 1 0)

let test_digraph_idempotent_add () =
  let g = Digraph.create () in
  Digraph.add_nodes g 2;
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  check_int "no parallel edge" 1 (Digraph.n_edges g)

let test_digraph_remove () =
  let g = diamond () in
  Digraph.remove_edge g 0 1;
  check_int "edges after remove" 3 (Digraph.n_edges g);
  check_bool "gone" false (Digraph.mem_edge g 0 1);
  Digraph.remove_edge g 0 1;
  check_int "idempotent remove" 3 (Digraph.n_edges g);
  check_int_list "pred updated" [ 2 ] (Digraph.pred g 3 |> List.filter (( = ) 2))

let test_digraph_bad_edge () =
  let g = Digraph.create () in
  Digraph.add_nodes g 1;
  Alcotest.check_raises "unknown target"
    (Invalid_argument "Digraph.add_edge: unknown node 1") (fun () ->
      Digraph.add_edge g 0 1)

let test_digraph_transpose () =
  let g = diamond () in
  let t = Digraph.transpose g in
  check_bool "reversed" true (Digraph.mem_edge t 3 1);
  check_bool "reversed2" true (Digraph.mem_edge t 1 0);
  check_int "same edge count" (Digraph.n_edges g) (Digraph.n_edges t);
  check_bool "double transpose = original" true
    (Digraph.equal g (Digraph.transpose t))

let test_digraph_induced () =
  let g = diamond () in
  let sub, back = Digraph.induced g [ 0; 1; 3 ] in
  check_int "sub nodes" 3 (Digraph.n_nodes sub);
  check_int "sub edges" 2 (Digraph.n_edges sub);
  check_bool "kept 0->1" true (Digraph.mem_edge sub 0 1);
  check_bool "kept 1->3" true (Digraph.mem_edge sub 1 2);
  check_int "back map" 3 back.(2)

let test_digraph_induced_dup () =
  let g = diamond () in
  Alcotest.check_raises "duplicate" (Invalid_argument "Digraph.induced: duplicate node")
    (fun () -> ignore (Digraph.induced g [ 0; 0 ]))

let test_digraph_copy_isolated () =
  let g = diamond () in
  let h = Digraph.copy g in
  Digraph.add_edge h 3 0;
  check_bool "copy independent" false (Digraph.mem_edge g 3 0);
  check_bool "copy got edge" true (Digraph.mem_edge h 3 0)

(* ------------------------------------------------------------------ *)
(* Algo                                                                *)
(* ------------------------------------------------------------------ *)

let test_topo_diamond () =
  let g = diamond () in
  match Algo.topological_sort g with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
    check_int_list "deterministic topo" [ 0; 1; 2; 3 ] order

let test_topo_cycle () =
  let g = Digraph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check_bool "cycle detected" false (Algo.is_dag g);
  match Algo.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
    check_int "cycle length" 3 (List.length cycle);
    (* Every consecutive pair (and the wrap-around) must be an edge. *)
    let arr = Array.of_list cycle in
    Array.iteri
      (fun i v ->
        let w = arr.((i + 1) mod Array.length arr) in
        check_bool "cycle edge" true (Digraph.mem_edge g v w))
      arr

let test_self_loop_cycle () =
  let g = Digraph.of_edges ~n:2 [ (0, 0); (0, 1) ] in
  check_bool "self loop is a cycle" false (Algo.is_dag g);
  match Algo.find_cycle g with
  | Some [ v ] -> check_int "loop node" 0 v
  | _ -> Alcotest.fail "expected the self-loop"

let test_bfs () =
  let g = Digraph.of_edges ~n:6 [ (0, 1); (0, 2); (1, 3); (2, 3); (4, 5) ] in
  check_int_list "bfs from 0" [ 0; 1; 2; 3 ] (Algo.bfs_order g [ 0 ]);
  check_int_list "bfs two sources" [ 0; 4; 1; 2; 5; 3 ] (Algo.bfs_order g [ 0; 4 ]);
  check_int_list "reachable set" [ 0; 1; 2; 3 ]
    (Bitset.elements (Algo.reachable_from g [ 0 ]));
  check_int_list "reaching set" [ 0; 1; 2; 3 ]
    (Bitset.elements (Algo.reaching_to g [ 3 ]))

let test_sources_sinks () =
  let g = Digraph.of_edges ~n:5 [ (0, 2); (1, 2); (2, 3); (2, 4) ] in
  check_int_list "sources" [ 0; 1 ] (Algo.sources g);
  check_int_list "sinks" [ 3; 4 ] (Algo.sinks g)

let test_scc () =
  (* Two 2-cycles joined by an edge, plus an isolated node. *)
  let g =
    Digraph.of_edges ~n:5 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ]
  in
  let comp, count = Algo.scc g in
  check_int "three components" 3 count;
  check_int "0 and 1 together" comp.(0) comp.(1);
  check_int "2 and 3 together" comp.(2) comp.(3);
  check_bool "separate" true (comp.(0) <> comp.(2));
  (* Reverse topological numbering: the sink component {2,3} comes first. *)
  check_bool "sink scc numbered lower" true (comp.(2) < comp.(0));
  let dag, comp' = Algo.condensation g in
  check_bool "same map" true (comp = comp');
  check_bool "condensation acyclic" true (Algo.is_dag dag);
  check_bool "condensation edge" true (Digraph.mem_edge dag comp.(1) comp.(2))

let test_longest_path () =
  let g = Digraph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (0, 4) ] in
  check_int "longest path" 3 (Algo.longest_path_length g)

let test_dfs_postorder_covers_all () =
  let g = Digraph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_int_list "postorder covers all nodes" [ 0; 1; 2; 3 ]
    (List.sort compare (Algo.dfs_postorder g))

let test_deep_chain_no_overflow () =
  (* 200k-node chain: traversals must be stack safe. *)
  let n = 200_000 in
  let g = Digraph.create ~initial_capacity:n () in
  Digraph.add_nodes g n;
  for v = 0 to n - 2 do
    Digraph.add_edge g v (v + 1)
  done;
  check_int "postorder length" n (List.length (Algo.dfs_postorder g));
  let _, count = Algo.scc g in
  check_int "scc count on chain" n count;
  check_int "longest path" (n - 1) (Algo.longest_path_length g)

(* ------------------------------------------------------------------ *)
(* Reach                                                               *)
(* ------------------------------------------------------------------ *)

let test_reach_diamond () =
  let r = Reach.compute (diamond ()) in
  check_bool "0 reaches 3" true (Reach.reaches r 0 3);
  check_bool "reflexive" true (Reach.reaches r 2 2);
  check_bool "no back path" false (Reach.reaches r 3 0);
  check_int_list "descendants 0" [ 0; 1; 2; 3 ] (Bitset.elements (Reach.descendants r 0));
  check_int_list "ancestors 3" [ 0; 1; 2; 3 ] (Bitset.elements (Reach.ancestors r 3));
  (* rows: {0,1,2,3}, {1,3}, {2,3}, {3} *)
  check_int "closure edges" (4 + 2 + 2 + 1) (Reach.n_closure_edges r)

let test_reach_cyclic () =
  let g = Digraph.of_edges ~n:4 [ (0, 1); (1, 0); (1, 2); (3, 0) ] in
  let r = Reach.compute g in
  check_bool "within scc" true (Reach.reaches r 0 1 && Reach.reaches r 1 0);
  check_bool "out of scc" true (Reach.reaches r 0 2);
  check_bool "into scc" true (Reach.reaches r 3 2);
  check_bool "not backwards" false (Reach.reaches r 2 0)

let test_reach_set_queries () =
  let g = Digraph.of_edges ~n:6 [ (0, 2); (1, 2); (2, 3); (3, 4); (5, 4) ] in
  let r = Reach.compute g in
  let set = Bitset.of_list 6 [ 3 ] in
  check_int_list "ancestors of {3}" [ 0; 1; 2; 3 ]
    (Bitset.elements (Reach.ancestors_of_set r set));
  check_int_list "descendants of {3}" [ 3; 4 ]
    (Bitset.elements (Reach.descendants_of_set r set))

(* Regression: [descendants] hands out a fresh set. The cyclic closure
   shares one internal row across an SCC's members, so a live handle would
   let a caller's mutation corrupt [reaches] for every sibling node. *)
let test_reach_descendants_owned () =
  (* 0 <-> 1 form an SCC reaching 2; 3 reaches the SCC. *)
  let g = Digraph.of_edges ~n:4 [ (0, 1); (1, 0); (1, 2); (3, 0) ] in
  let r = Reach.compute g in
  let d0 = Reach.descendants r 0 in
  check_int_list "descendants of 0" [ 0; 1; 2 ] (Bitset.elements d0);
  Bitset.clear d0;
  Bitset.add d0 3;
  check_bool "reaches unaffected by clearing the result" true
    (Reach.reaches r 0 2);
  check_bool "sibling SCC member unaffected" true (Reach.reaches r 1 2);
  check_bool "no phantom edge from the mutation" false (Reach.reaches r 0 3);
  check_int_list "second query sees the original row" [ 0; 1; 2 ]
    (Bitset.elements (Reach.descendants r 0));
  (* Same contract on the DAG path. *)
  let dag = Digraph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let rd = Reach.compute dag in
  let d = Reach.descendants rd 0 in
  Bitset.clear d;
  check_bool "dag reaches unaffected" true (Reach.reaches rd 0 2);
  (* And the allocation-free accessor accumulates without exposing rows. *)
  let acc = Bitset.create 4 in
  Reach.union_descendants_into r ~into:acc 3;
  check_int_list "union_descendants_into" [ 0; 1; 2; 3 ] (Bitset.elements acc)

(* [ancestors] (served from the cached transposed closure) must agree with
   the definition {u | reaches u v}, on DAGs and cyclic graphs alike. *)
let ancestors_agree =
  QCheck2.Test.make ~name:"ancestors = inverted reaches" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 12)
        (list_size (int_range 0 30) (pair (int_bound 11) (int_bound 11))))
    (fun (n, edges) ->
      let edges =
        List.filter (fun (u, v) -> u < n && v < n && u <> v) edges
      in
      let g = Digraph.of_edges ~n edges in
      let r = Reach.compute g in
      List.for_all
        (fun v ->
          let expected =
            List.filter (fun u -> Reach.reaches r u v) (List.init n Fun.id)
          in
          Bitset.elements (Reach.ancestors r v) = expected)
        (List.init n Fun.id))

(* Property: closure agrees with per-pair BFS on random DAGs. *)
let random_dag_gen =
  (* Build a DAG by only adding forward edges u < v. *)
  QCheck2.Gen.(
    bind (int_range 2 14) (fun n ->
        let all_pairs =
          List.concat_map
            (fun u -> List.init (n - 1 - u) (fun k -> (u, u + 1 + k)))
            (List.init n Fun.id)
        in
        let pick_edge pair = map (fun b -> (b, pair)) bool in
        map
          (fun tagged ->
            (n, List.filter_map (fun (b, e) -> if b then Some e else None) tagged))
          (flatten_l (List.map pick_edge all_pairs))))

let reach_agrees_with_bfs =
  QCheck2.Test.make ~name:"transitive closure agrees with BFS" ~count:100
    random_dag_gen
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let r = Reach.compute g in
      List.for_all
        (fun u ->
          let reachable = Algo.reachable_from g [ u ] in
          List.for_all
            (fun v -> Reach.reaches r u v = Bitset.mem reachable v)
            (List.init n Fun.id))
        (List.init n Fun.id))

let topo_respects_edges =
  QCheck2.Test.make ~name:"topological order sorts every edge" ~count:100
    random_dag_gen
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      match Algo.topological_sort g with
      | None -> false
      | Some order ->
        let position = Array.make n 0 in
        List.iteri (fun i v -> position.(v) <- i) order;
        List.for_all (fun (u, v) -> position.(u) < position.(v)) edges)

let scc_condensation_is_dag =
  (* Random (possibly cyclic) graphs: condensation must be acyclic and
     preserve reachability. *)
  let gen =
    QCheck2.Gen.(
      bind (int_range 2 10) (fun n ->
          map
            (fun pairs -> (n, List.map (fun (u, v) -> (u mod n, v mod n)) pairs))
            (list_size (int_range 0 25) (pair (int_bound 100) (int_bound 100)))))
  in
  QCheck2.Test.make ~name:"condensation acyclic + reachability preserved"
    ~count:100 gen
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let dag, comp = Algo.condensation g in
      let r = Reach.compute g and rc = Reach.compute dag in
      Algo.is_dag dag
      && List.for_all
           (fun u ->
             List.for_all
               (fun v -> Reach.reaches r u v = Reach.reaches rc comp.(u) comp.(v))
               (List.init n Fun.id))
           (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dot_output () =
  let g = diamond () in
  let dot =
    Dot.to_string ~graph_name:"d"
      ~node_label:(fun v -> Printf.sprintf "t%d" v)
      ~clusters:
        [ { Dot.cluster_name = "c0";
            cluster_label = "first \"half\"";
            cluster_nodes = [ 0; 1 ];
            cluster_color = Some "red" } ]
      g
  in
  let contains needle =
    let len_n = String.length needle and len_h = String.length dot in
    let rec go i = i + len_n <= len_h && (String.sub dot i len_n = needle || go (i + 1)) in
    go 0
  in
  check_bool "has edge" true (contains "n0 -> n1;");
  check_bool "has cluster" true (contains "subgraph \"cluster_c0\"");
  check_bool "escaped label" true (contains "first \\\"half\\\"");
  check_bool "cluster color" true (contains "color=\"red\"");
  check_bool "labels" true (contains "label=\"t3\"")

let test_dot_escape () =
  Alcotest.(check string) "escape" "a\\\"b\\\\c\\nd" (Dot.escape "a\"b\\c\nd")


(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let test_count_paths () =
  let g = diamond () in
  Alcotest.(check (float 0.0)) "two paths through the diamond" 2.0
    (Paths.count_paths g 0 3);
  Alcotest.(check (float 0.0)) "empty path" 1.0 (Paths.count_paths g 1 1);
  Alcotest.(check (float 0.0)) "no path" 0.0 (Paths.count_paths g 3 0);
  (* diamond: 0->1,0->2,1->3,2->3: paths 0-1,0-2,1-3,2-3,0-1-3,0-2-3 = 6 *)
  Alcotest.(check (float 0.0)) "total paths" 6.0 (Paths.total_paths g)

let test_count_paths_exponential () =
  (* k stacked diamonds: 2^k source-to-sink paths. *)
  let k = 30 in
  let g = Digraph.create () in
  Digraph.add_nodes g ((3 * k) + 1);
  for i = 0 to k - 1 do
    let base = 3 * i in
    Digraph.add_edge g base (base + 1);
    Digraph.add_edge g base (base + 2);
    Digraph.add_edge g (base + 1) (base + 3);
    Digraph.add_edge g (base + 2) (base + 3)
  done;
  Alcotest.(check (float 0.0)) "2^k paths" (Float.pow 2.0 (float_of_int k))
    (Paths.count_paths g 0 (3 * k))

let test_count_paths_cycle () =
  let g = Digraph.of_edges ~n:2 [ (0, 1); (1, 0) ] in
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Paths.count_paths: graph has a cycle") (fun () ->
      ignore (Paths.count_paths g 0 1))

let test_transitive_reduction () =
  (* chain 0->1->2 plus shortcut 0->2: the shortcut goes away. *)
  let g = Digraph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let red = Paths.transitive_reduction g in
  check_int "one edge dropped" 2 (Digraph.n_edges red);
  check_bool "shortcut removed" false (Digraph.mem_edge red 0 2);
  check_bool "now reduced" true (Paths.is_transitively_reduced red);
  check_bool "original not reduced" false (Paths.is_transitively_reduced g)

let prop_reduction_preserves_reachability =
  QCheck2.Test.make ~name:"transitive reduction preserves reachability"
    ~count:100 random_dag_gen
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let red = Paths.transitive_reduction g in
      let r = Reach.compute g and r' = Reach.compute red in
      Digraph.n_edges red <= Digraph.n_edges g
      && Paths.is_transitively_reduced red
      && List.for_all
           (fun u ->
             List.for_all
               (fun v -> Reach.reaches r u v = Reach.reaches r' u v)
               (List.init n Fun.id))
           (List.init n Fun.id))


(* ------------------------------------------------------------------ *)
(* Dominators                                                          *)
(* ------------------------------------------------------------------ *)

let test_dominators_diamond () =
  let g = diamond () in
  let dom = Dominators.compute g in
  Alcotest.(check (option int)) "idom of 1" (Some 0) (Dominators.idom dom 1);
  Alcotest.(check (option int)) "idom of 3 skips branches" (Some 0)
    (Dominators.idom dom 3);
  check_bool "0 dominates all" true
    (List.for_all (fun v -> Dominators.dominates dom 0 v) [ 0; 1; 2; 3 ]);
  check_bool "1 does not dominate 3" false (Dominators.dominates dom 1 3);
  let post = Dominators.compute_post g in
  Alcotest.(check (option int)) "3 postdominates the branches" (Some 3)
    (Dominators.common post [ 1; 2 ])

let test_dominators_multi_source () =
  (* Two sources joining: neither source dominates the join. *)
  let g = Digraph.of_edges ~n:3 [ (0, 2); (1, 2) ] in
  let dom = Dominators.compute g in
  Alcotest.(check (option int)) "join dominated only by virtual root" None
    (Dominators.idom dom 2);
  check_bool "0 does not dominate 2" false (Dominators.dominates dom 0 2)

let test_dominators_chain () =
  let g = Digraph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let dom = Dominators.compute g in
  check_bool "chain: every prefix dominates" true
    (Dominators.dominates dom 1 3 && Dominators.dominates dom 0 3);
  Alcotest.(check (option int)) "common of {2,3}" (Some 2)
    (Dominators.common dom [ 2; 3 ])

let test_dominators_cycle_rejected () =
  let g = Digraph.of_edges ~n:2 [ (0, 1); (1, 0) ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Dominators.compute: graph has a cycle")
    (fun () -> ignore (Dominators.compute g))

let prop_dominators_definition =
  (* d dominates v iff removing d disconnects v from every source. *)
  QCheck2.Test.make ~name:"dominators match the path definition" ~count:100
    random_dag_gen
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let dom = Dominators.compute g in
      let sources = Algo.sources g in
      let reaches_avoiding d v =
        (* Is v reachable from some source without passing through d? *)
        if List.mem v sources && v <> d then true
        else begin
          let blocked = Digraph.copy g in
          (* cut d's out-edges so paths cannot continue through it *)
          List.iter (fun w -> Digraph.remove_edge blocked d w) (Digraph.succ g d);
          let from_sources =
            Algo.reachable_from blocked (List.filter (fun s -> s <> d) sources)
          in
          Bitset.mem from_sources v
        end
      in
      List.for_all
        (fun d ->
          List.for_all
            (fun v ->
              let dominated = Dominators.dominates dom d v in
              if d = v then dominated
              else dominated = not (reaches_avoiding d v))
            (List.init n Fun.id))
        (List.init n Fun.id))


let test_dominators_single_entry_chain () =
  (* Regression: on a single-entry chain every prefix dominates every
     suffix, the idom is the immediate predecessor, and the dominator-tree
     intervals are strictly nested along the chain. *)
  let n = 100 in
  let g = Digraph.of_edges ~n (List.init (n - 1) (fun v -> (v, v + 1))) in
  let dom = Dominators.compute g in
  for v = 1 to n - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "idom of %d is its predecessor" v)
      (Some (v - 1)) (Dominators.idom dom v)
  done;
  Alcotest.(check (option int)) "the entry has no idom" None
    (Dominators.idom dom 0);
  let pre, post = Dominators.tree_intervals dom in
  for v = 0 to n - 2 do
    check_bool "intervals nest along the chain" true
      (pre.(v) < pre.(v + 1) && post.(v + 1) < post.(v))
  done

(* The generator families give realistic workflow DAGs (multi-source, so
   the virtual-root handling is exercised too). *)
let family_graphs () =
  List.concat_map
    (fun family ->
      List.map
        (fun (seed, size) ->
          Spec.graph (Wolves_workload.Generate.generate family ~seed ~size))
        [ (3, 25); (11, 60); (29, 110) ])
    Wolves_workload.Generate.all_families

let test_idom_deepest_dominator () =
  (* The defining property of the immediate dominator: it is itself a
     proper dominator, and every other proper dominator dominates it — the
     idom is the deepest, so the proper dominators form a chain ending at
     it. *)
  List.iter
    (fun g ->
      let n = Digraph.n_nodes g in
      let dom = Dominators.compute g in
      for v = 0 to n - 1 do
        let proper =
          List.filter
            (fun d -> d <> v && Dominators.dominates dom d v)
            (List.init n Fun.id)
        in
        match Dominators.idom dom v with
        | None -> check_bool "no idom means no proper dominator" true (proper = [])
        | Some d ->
          check_bool "idom is a proper dominator" true (List.mem d proper);
          List.iter
            (fun d' ->
              check_bool "every other dominator dominates the idom" true
                (d' = d || Dominators.dominates dom d' d))
            proper
      done)
    (family_graphs ())

let test_tree_intervals_agree () =
  (* The O(1) interval test must coincide with [dominates] on every pair. *)
  List.iter
    (fun g ->
      let n = Digraph.n_nodes g in
      let dom = Dominators.compute g in
      let pre, post = Dominators.tree_intervals dom in
      for d = 0 to n - 1 do
        for v = 0 to n - 1 do
          check_bool "interval containment = dominates" true
            ((pre.(d) <= pre.(v) && post.(v) <= post.(d))
            = Dominators.dominates dom d v)
        done
      done)
    (family_graphs ())

(* ------------------------------------------------------------------ *)
(* Interval index                                                      *)
(* ------------------------------------------------------------------ *)

let test_interval_diamond () =
  let g = diamond () in
  let idx = Interval.compute g in
  check_bool "0 reaches 3" true (Interval.reaches idx 0 3);
  check_bool "reflexive" true (Interval.reaches idx 2 2);
  check_bool "no back path" false (Interval.reaches idx 3 0);
  check_bool "1 not to 2" false (Interval.reaches idx 1 2)

let test_interval_tree_compact () =
  (* A pure out-tree needs exactly one interval per node. *)
  let n = 127 in
  let g = Digraph.create () in
  Digraph.add_nodes g n;
  for v = 1 to n - 1 do
    Digraph.add_edge g ((v - 1) / 2) v
  done;
  let idx = Interval.compute g in
  check_int "one interval per node" n (Interval.n_intervals idx);
  check_int "max one" 1 (Interval.max_intervals_per_node idx);
  check_bool "root reaches a leaf" true (Interval.reaches idx 0 (n - 1))

let test_interval_cycle_rejected () =
  let g = Digraph.of_edges ~n:2 [ (0, 1); (1, 0) ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Interval.compute: graph has a cycle")
    (fun () -> ignore (Interval.compute g))

let prop_interval_agrees =
  QCheck2.Test.make ~name:"interval index agrees with bitset closure" ~count:150
    random_dag_gen
    (fun (n, edges) ->
      let g = Digraph.of_edges ~n edges in
      let idx = Interval.compute g in
      let r = Reach.compute g in
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> Interval.reaches idx u v = Reach.reaches r u v)
            (List.init n Fun.id))
        (List.init n Fun.id))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_graph"
    [ ( "bitset",
        [ Alcotest.test_case "basic add/remove/mem" `Quick test_bitset_basic;
          Alcotest.test_case "bounds checking" `Quick test_bitset_bounds;
          Alcotest.test_case "fill and clear" `Quick test_bitset_fill_clear;
          Alcotest.test_case "fill at word boundary" `Quick
            test_bitset_fill_word_boundary;
          Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
          Alcotest.test_case "capacity mismatch" `Quick test_bitset_capacity_mismatch;
          Alcotest.test_case "choose/fold/quantifiers" `Quick test_bitset_choose_fold;
          Alcotest.test_case "subset/disjoint early exit" `Quick
            test_bitset_subset_early_exit;
          Alcotest.test_case "for_all/exists early exit" `Quick
            test_bitset_quantifier_early_exit;
          qt union_many_agrees;
          qt bitset_model_prop;
          qt bitset_iter_prop ] );
      ( "digraph",
        [ Alcotest.test_case "build and query" `Quick test_digraph_build;
          Alcotest.test_case "idempotent add_edge" `Quick test_digraph_idempotent_add;
          Alcotest.test_case "remove_edge" `Quick test_digraph_remove;
          Alcotest.test_case "edge to unknown node" `Quick test_digraph_bad_edge;
          Alcotest.test_case "transpose" `Quick test_digraph_transpose;
          Alcotest.test_case "induced subgraph" `Quick test_digraph_induced;
          Alcotest.test_case "induced rejects duplicates" `Quick
            test_digraph_induced_dup;
          Alcotest.test_case "copy is independent" `Quick test_digraph_copy_isolated ] );
      ( "algo",
        [ Alcotest.test_case "topological sort" `Quick test_topo_diamond;
          Alcotest.test_case "cycle detection" `Quick test_topo_cycle;
          Alcotest.test_case "self loop" `Quick test_self_loop_cycle;
          Alcotest.test_case "bfs and reachable sets" `Quick test_bfs;
          Alcotest.test_case "sources and sinks" `Quick test_sources_sinks;
          Alcotest.test_case "tarjan scc + condensation" `Quick test_scc;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "postorder covers all" `Quick
            test_dfs_postorder_covers_all;
          Alcotest.test_case "deep chain is stack safe" `Slow
            test_deep_chain_no_overflow;
          qt topo_respects_edges;
          qt scc_condensation_is_dag ] );
      ( "reach",
        [ Alcotest.test_case "diamond closure" `Quick test_reach_diamond;
          Alcotest.test_case "cyclic closure" `Quick test_reach_cyclic;
          Alcotest.test_case "set queries" `Quick test_reach_set_queries;
          Alcotest.test_case "descendants are caller-owned" `Quick
            test_reach_descendants_owned;
          qt ancestors_agree;
          qt reach_agrees_with_bfs ] );
      ( "paths",
        [ Alcotest.test_case "diamond counts" `Quick test_count_paths;
          Alcotest.test_case "exponential growth" `Quick
            test_count_paths_exponential;
          Alcotest.test_case "cycles rejected" `Quick test_count_paths_cycle;
          Alcotest.test_case "transitive reduction" `Quick
            test_transitive_reduction;
          qt prop_reduction_preserves_reachability ] );
      ( "interval",
        [ Alcotest.test_case "diamond" `Quick test_interval_diamond;
          Alcotest.test_case "trees are one interval" `Quick
            test_interval_tree_compact;
          Alcotest.test_case "cycles rejected" `Quick test_interval_cycle_rejected;
          qt prop_interval_agrees ] );
      ( "dominators",
        [ Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "multiple sources" `Quick test_dominators_multi_source;
          Alcotest.test_case "chain" `Quick test_dominators_chain;
          Alcotest.test_case "cycles rejected" `Quick test_dominators_cycle_rejected;
          Alcotest.test_case "single-entry chain regression" `Quick
            test_dominators_single_entry_chain;
          Alcotest.test_case "idom is the deepest dominator (families)" `Quick
            test_idom_deepest_dominator;
          Alcotest.test_case "tree intervals = dominates (families)" `Quick
            test_tree_intervals_agree;
          qt prop_dominators_definition ] );
      ( "dot",
        [ Alcotest.test_case "render with clusters" `Quick test_dot_output;
          Alcotest.test_case "escaping" `Quick test_dot_escape ] ) ]
