(* End-to-end integration scenarios stitching the whole system together:
   formats <-> model <-> session <-> correctors <-> hierarchy <-> engine <->
   store <-> queries. Each test is a realistic user journey. *)

open Wolves_workflow
module T = Wolves_workload.Templates
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Session = Wolves_core.Session
module Hr = Wolves_core.Hierarchy
module Suggest = Wolves_core.Suggest
module P = Wolves_provenance.Provenance
module Store = Wolves_provenance.Store
module Engine = Wolves_engine.Engine
module Query = Wolves_query.Query
module Editor = Wolves_cli.Editor
module Moml = Wolves_moml.Moml
module Wfdsl = Wolves_lang.Wfdsl
module R = Wolves_repository.Repository

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let in_tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* Journey 1: a bioinformatician's pipeline, from authoring to exact
   provenance. *)
let test_authoring_to_provenance () =
  (* Author in the DSL. *)
  let source =
    {|workflow "rnaseq" {
  task "download"; task "qc"; task "trim"; task "align";
  task "count"; task "normalize"; task "report"; task "annotate";

  "download" -> "qc" -> "trim" -> "align" -> "count";
  "count" -> "normalize" -> "report";
  "download" -> "annotate";
  "annotate" -> "report";

  composite "Prep"     { "download" "qc" "trim" }
  composite "Quantify" { "align" "count" "annotate" }   # sneaky: annotate doesn't feed align
  composite "Publish"  { "normalize" "report" }
}|}
  in
  let path = in_tmp "rnaseq.wf" in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc source);
  let spec, view =
    match Wfdsl.load path with
    | Ok v -> v
    | Error e -> Alcotest.failf "DSL: %a" Wfdsl.pp_error e
  in
  Sys.remove path;
  (* The validator catches the sneaky grouping. *)
  let report = S.validate view in
  check_int "one unsound composite" 1 (List.length report.S.unsound);
  let bad = View.composite_name view (fst (List.hd report.S.unsound)) in
  Alcotest.(check string) "it is Quantify" "Quantify" bad;
  (* Item-level damage exists before correction... *)
  let before = P.evaluate_view_items view in
  check_bool "wrong answers before" true (before.P.spurious > 0);
  (* ...an editor session repairs it interactively... *)
  let editor = Editor.create view in
  let out =
    Editor.run_script editor [ "correct \"Quantify\" optimal"; "show" ]
  in
  check_bool "editor reports soundness" true
    (List.exists
       (fun l ->
         let needle = "view is sound" in
         let ln = String.length needle and lh = String.length l in
         let rec go i = i + ln <= lh && (String.sub l i ln = needle || go (i + 1)) in
         go 0)
       out);
  let repaired = Session.current_view (Editor.session editor) in
  (* ...and provenance is exact, via MoML round trip to be sure nothing is
     lost in serialisation. *)
  let reloaded =
    match Moml.of_string (Moml.to_string repaired) with
    | Ok (_, v) -> v
    | Error e -> Alcotest.failf "MoML: %a" Moml.pp_error e
  in
  let after = P.evaluate_view_items reloaded in
  check_int "exact provenance after repair + round trip" 0 after.P.spurious;
  (* Query cross-check on the repaired view. *)
  (match
     Query.eval_names reloaded
       "composites(ancestors('report')) - ancestors('report')"
   with
   | Ok extras ->
     (* Sound view: the composite-level overapproximation may include
        co-grouped tasks but never unsound phantom branches; here the
        repaired groups are tight enough to be exact. *)
     check_bool "no phantom branch" true
       (not (List.mem "qc-phantom" extras))
   | Error e -> Alcotest.failf "query: %a" Query.pp_error e);
  ignore spec

(* Journey 2: operations — suggested sound view, month of runs, influence
   audit, persisted and reloaded. *)
let test_operations_journey () =
  let spec = T.generate T.Montage ~scale:6 in
  let view =
    Suggest.view_of_groups spec (Suggest.optimal_sound_banding spec ~max_size:6)
  in
  check_bool "suggested view sound" true (S.is_sound view);
  let store = Store.create spec in
  for night = 1 to 15 do
    let config =
      { Engine.default_config with
        Engine.workers = 3;
        failure_rate = 0.05;
        seed = night;
        policy = Engine.Critical_path_first }
    in
    let trace = Engine.run ~config spec in
    match Store.record_run store (Engine.statuses trace) with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg
  done;
  let csv = in_tmp "montage_runs.csv" in
  (match Store.save_csv store csv with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (match Store.load_csv spec csv with
   | Error msg -> Alcotest.fail msg
   | Ok store' ->
     check_int "runs preserved" 15 (Store.n_runs store');
     (* Influence queries agree between original and reloaded stores. *)
     let first = Spec.task_of_name_exn spec "mProject_0" in
     let last = Spec.task_of_name_exn spec "mJPEG" in
     check_bool "influence sets equal" true
       (Store.runs_where_influences store first last
        = Store.runs_where_influences store' first last));
  Sys.remove csv

(* Journey 3: repository maintenance across a workflow upgrade. *)
let test_repository_evolution_journey () =
  let repo = R.create () in
  let spec_v1 = T.generate T.Epigenomics ~scale:3 in
  let view_v1, _ = C.correct C.Strong (T.natural_view T.Epigenomics spec_v1) in
  let id = R.add repo ~origin:"pegasus" spec_v1 view_v1 in
  check_int "audit clean" 0 (R.audit repo).R.unsound_views;
  (* The pipeline gains a lane: stage views must be re-checked. *)
  let spec_v2 = T.generate T.Epigenomics ~scale:4 in
  (match R.update repo ~id spec_v2 with
   | Error msg -> Alcotest.fail msg
   | Ok impact ->
     let appeared =
       List.filter
         (fun (_, ch) -> ch = Wolves_core.Evolution.Appeared)
         impact.Wolves_core.Evolution.changes
     in
     check_bool "the new lane appeared as singletons" true
       (List.length appeared >= 4));
  (* Whatever the impact, one batch correction re-establishes soundness. *)
  let repo', _ = R.correct_all C.Strong repo in
  check_int "sound after maintenance" 0 (R.audit repo').R.unsound_views;
  (* And the whole repository round-trips through MoML files. *)
  let dir = in_tmp "wolves_integration_repo" in
  (match R.save_dir dir repo' with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save_dir: %a" R.pp_io_error e);
  (match R.load_dir dir with
   | Ok loaded -> check_int "reload" (R.size repo') (R.size loaded)
   | Error e -> Alcotest.failf "load_dir: %a" R.pp_io_error e);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* Journey 4: multi-level abstraction over a corrected realistic workflow. *)
let test_hierarchy_journey () =
  let spec = T.generate T.Ligo ~scale:6 in
  let v0, _ = C.correct C.Strong (T.natural_view T.Ligo spec) in
  let vspec = Hr.spec_of_view v0 in
  (* Coarsen soundly with the automatic constructor over the view graph. *)
  let super =
    Suggest.view_of_groups vspec (Suggest.greedy_sound_groups vspec ~max_size:4)
  in
  let groups =
    List.map
      (fun c ->
        ( "L2-" ^ string_of_int c,
          List.map (Spec.task_name vspec) (View.members super c) ))
      (View.composites super)
  in
  match Hr.coarsen (Hr.base v0) groups with
  | Error msg -> Alcotest.fail msg
  | Ok h ->
    check_bool "both levels locally sound" true (Hr.sound h);
    let flat = Hr.flatten h in
    check_bool "flattened sound (composition theorem)" true (S.is_sound flat);
    check_bool "real compression" true
      (View.compression flat > View.compression v0);
    (* Provenance at the coarsest level is still exact. *)
    check_int "exact at the top level" 0 (P.evaluate_view_items flat).P.spurious

let () =
  Alcotest.run "wolves_integration"
    [ ( "journeys",
        [ Alcotest.test_case "authoring to exact provenance" `Quick
            test_authoring_to_provenance;
          Alcotest.test_case "operations (engine + store + csv)" `Quick
            test_operations_journey;
          Alcotest.test_case "repository evolution" `Quick
            test_repository_evolution_journey;
          Alcotest.test_case "multi-level abstraction" `Quick
            test_hierarchy_journey ] ) ]
