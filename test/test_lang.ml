(* Tests for the .wf workflow DSL: parsing, error positions, round-trips,
   and cross-format agreement with MoML. *)

open Wolves_workflow
module Wfdsl = Wolves_lang.Wfdsl
module Moml = Wolves_moml.Moml
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "DSL error: %a" Wfdsl.pp_error e

let sample =
  {|# a small analysis
workflow "demo" {
  task "fetch";
  task "clean";
  task "join";     # trailing comments are fine
  task "report";
  task "audit";

  "fetch" -> "clean" -> "join";
  "clean" -> "audit";
  "join" -> "report";

  composite "Prepare" { "fetch" "clean" }
  composite "Publish" { "join" "report" }
}
|}

let test_parse_sample () =
  let spec, view = ok (Wfdsl.of_string sample) in
  Alcotest.(check string) "name" "demo" (Spec.name spec);
  check_int "tasks" 5 (Spec.n_tasks spec);
  check_int "edges (chain sugar expands)" 4 (Spec.n_dependencies spec);
  check_bool "chain edge 1" true
    (Spec.depends spec (Spec.task_of_name_exn spec "fetch")
       (Spec.task_of_name_exn spec "join"));
  check_int "composites: 2 declared + 1 singleton" 3 (View.n_composites view);
  check_bool "singleton for audit" true (View.composite_of_name view "audit" <> None)

let test_parse_errors () =
  let cases =
    [ ("", "expected 'workflow'");
      ("workflow \"w\" {", "missing '}'");
      ("workflow \"w\" { task \"a\" }", "expected ';'");
      ("workflow \"w\" { task \"a\"; task \"a\"; }", "declared twice");
      ("workflow \"w\" { \"a\" -> \"b\"; }", "unknown task \"a\"");
      ("workflow \"w\" { task \"a\"; \"a\"; }", "at least two tasks");
      ("workflow \"w\" { task \"a\"; composite \"c\" { \"a\" } composite \"d\" { \"a\" } }",
       "already in a composite");
      ("workflow \"w\" { task \"a\"; } extra", "unknown keyword");
      ("workflow \"w\" { task \"a; }", "unterminated name");
      ("workflow \"w\" { task \"a\"; - }", "expected '->'");
      ("workflow \"w\" { task \"a\"; task \"b\"; \"a\" -> \"b\" -> ; }",
       "expected a task name after '->'");
      ("workflow \"w\" { task \"a\"; ? }", "unexpected character");
      ("workflow \"w\" { task \"a\"; task \"b\"; \"a\" -> \"b\"; \"b\" -> \"a\"; }",
       "dependency cycle") ]
  in
  List.iter
    (fun (src, fragment) ->
      match Wfdsl.of_string src with
      | Ok _ -> Alcotest.failf "expected %S to fail (%s)" src fragment
      | Error e ->
        let msg = Format.asprintf "%a" Wfdsl.pp_error e in
        let contains =
          let ln = String.length fragment and lh = String.length msg in
          let rec go i = i + ln <= lh && (String.sub msg i ln = fragment || go (i + 1)) in
          go 0
        in
        check_bool (Printf.sprintf "%s in %s" fragment msg) true contains)
    cases

let test_error_positions () =
  match Wfdsl.of_string "workflow \"w\" {\n  task \"a\";\n  bogus\n}" with
  | Error e ->
    check_int "line" 3 e.Wfdsl.line;
    check_int "column" 3 e.Wfdsl.column
  | Ok _ -> Alcotest.fail "expected failure"

let test_escapes () =
  let spec, _ =
    ok (Wfdsl.of_string {|workflow "a\"b" { task "x\\y"; }|})
  in
  Alcotest.(check string) "workflow name" {|a"b|} (Spec.name spec);
  check_bool "task name" true (Spec.task_of_name spec {|x\y|} <> None)

let test_attributes () =
  let spec, _ =
    ok
      (Wfdsl.of_string
         {|workflow "w" {
  task "a" [ "duration" = "2.5", "mem" = "4G" ];
  task "b";
  "a" -> "b";
}|})
  in
  let a = Spec.task_of_name_exn spec "a" in
  Alcotest.(check (option string)) "attr" (Some "4G") (Spec.attr spec a "mem");
  Alcotest.(check (option (float 0.0))) "float attr" (Some 2.5)
    (Spec.float_attr spec a "duration");
  Alcotest.(check (list (pair string string))) "sorted attrs"
    [ ("duration", "2.5"); ("mem", "4G") ]
    (Spec.attrs spec a);
  (* Engine picks the duration up. *)
  let d = Wolves_engine.Engine.durations_from_attrs spec in
  Alcotest.(check (float 0.0)) "duration read" 2.5 (d a);
  Alcotest.(check (float 0.0)) "default elsewhere" 1.0
    (d (Spec.task_of_name_exn spec "b"));
  (* DSL round trip preserves attributes. *)
  let view = View.singleton_view spec in
  let spec', _ = ok (Wfdsl.of_string (Wfdsl.to_string view)) in
  Alcotest.(check (list (pair string string))) "DSL round trip"
    (Spec.attrs spec a)
    (Spec.attrs spec' (Spec.task_of_name_exn spec' "a"));
  (* MoML round trip preserves attributes too. *)
  (match Moml.of_string (Moml.to_string view) with
   | Ok (spec'', _) ->
     Alcotest.(check (list (pair string string))) "MoML round trip"
       (Spec.attrs spec a)
       (Spec.attrs spec'' (Spec.task_of_name_exn spec'' "a"))
   | Error e -> Alcotest.failf "MoML: %a" Moml.pp_error e);
  (* Error paths. *)
  (match Wfdsl.of_string {|workflow "w" { task "a" [ "k" "v" ]; }|} with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing '=' accepted");
  match Wfdsl.of_string {|workflow "w" { task "a" [ ]; }|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty attr block accepted"

let test_roundtrip_figure1 () =
  let _, view = Examples.figure1 () in
  let spec', view' = ok (Wfdsl.of_string (Wfdsl.to_string view)) in
  check_int "tasks" 12 (Spec.n_tasks spec');
  check_int "deps" 12 (Spec.n_dependencies spec');
  check_int "composites" 7 (View.n_composites view');
  List.iter
    (fun c ->
      let name = View.composite_name view c in
      let c' = Option.get (View.composite_of_name view' name) in
      Alcotest.(check (list string)) name
        (List.map (Spec.task_name (View.spec view)) (View.members view c))
        (List.map (Spec.task_name spec') (View.members view' c')))
    (View.composites view)

let test_file_io () =
  let _, view = Examples.figure3 () in
  let path = Filename.temp_file "wolves" ".wf" in
  (match Wfdsl.save path view with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save: %a" Wfdsl.pp_error e);
  let spec', _ = ok (Wfdsl.load path) in
  Sys.remove path;
  check_int "tasks" 14 (Spec.n_tasks spec');
  match Wfdsl.load "/nonexistent.wf" with
  | Error e ->
    check_int "io errors at line 0" 0 e.Wfdsl.line;
    (* the bugfix: load errors name the file they came from *)
    Alcotest.(check (option string)) "file recorded"
      (Some "/nonexistent.wf") e.Wfdsl.file;
    let rendered = Format.asprintf "%a" Wfdsl.pp_error e in
    check_bool "rendering starts with the path" true
      (String.length rendered > 17
       && String.sub rendered 0 17 = "/nonexistent.wf: ")
  | Ok _ -> Alcotest.fail "expected io failure"

let test_load_error_positions () =
  (* Parse errors from [load] carry both the file and the position. *)
  let path = Filename.temp_file "wolves" ".wf" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "workflow \"w\" {\n  task task;\n}\n");
  (match Wfdsl.load path with
   | Error e ->
     Alcotest.(check (option string)) "file" (Some path) e.Wfdsl.file;
     check_int "line" 2 e.Wfdsl.line
   | Ok _ -> Alcotest.fail "bad document accepted");
  Sys.remove path;
  (* [of_string] errors have no file to name. *)
  match Wfdsl.of_string "workflow \"w\" {\n  task task;\n}\n" with
  | Error e -> Alcotest.(check (option string)) "no file" None e.Wfdsl.file
  | Ok _ -> Alcotest.fail "bad document accepted"

let test_source_map () =
  let _, _, sm = ok (Wfdsl.of_string_with_source sample) in
  check_int "workflow line" 2 sm.Wfdsl.workflow_position.Wfdsl.pos_line;
  check_int "workflow column" 10 sm.Wfdsl.workflow_position.Wfdsl.pos_column;
  check_int "task decls" 5 (List.length sm.Wfdsl.task_decls);
  (match List.assoc_opt "fetch" sm.Wfdsl.task_decls with
   | Some p ->
     check_int "fetch line" 3 p.Wfdsl.pos_line;
     check_int "fetch column" 8 p.Wfdsl.pos_column
   | None -> Alcotest.fail "fetch not in source map");
  check_int "edges (chain sugar splits)" 4 (List.length sm.Wfdsl.edge_occurrences);
  (match List.assoc_opt ("fetch", "clean") sm.Wfdsl.edge_occurrences with
   | Some p ->
     check_int "edge line" 9 p.Wfdsl.pos_line;
     check_int "edge column (producer token)" 3 p.Wfdsl.pos_column
   | None -> Alcotest.fail "edge not in source map");
  (* chain sugar: the second hop is anchored at its own producer *)
  (match List.assoc_opt ("clean", "join") sm.Wfdsl.edge_occurrences with
   | Some p -> check_int "chain hop line" 9 p.Wfdsl.pos_line
   | None -> Alcotest.fail "chain hop not in source map");
  match List.assoc_opt "Prepare" sm.Wfdsl.composite_decls with
  | Some p -> check_int "composite line" 13 p.Wfdsl.pos_line
  | None -> Alcotest.fail "Prepare not in source map"

(* --- deps annotation blocks --- *)

let annotated_sample =
  {|workflow "annotated" {
  task "a";
  task "b";
  task "x";
  task "c";
  task "d";

  "a" -> "x";
  "b" -> "x";
  "x" -> "c";
  "x" -> "d";

  deps "x" {
    "c" <- "a" "b";
    "d" <-;
  }
}
|}

let test_deps_parse_and_roundtrip () =
  let spec, view = ok (Wfdsl.of_string annotated_sample) in
  check_bool "has annotations" true (Spec.has_annotations spec);
  let x = Spec.task_of_name_exn spec "x" in
  (match Spec.annotation spec x with
   | Some entries ->
     let named =
       List.sort compare
         (List.map
            (fun (o, ins) ->
              (Spec.task_name spec o, List.map (Spec.task_name spec) ins))
            entries)
     in
     Alcotest.(check (list (pair string (list string))))
       "entries" [ ("c", [ "a"; "b" ]); ("d", []) ] named
   | None -> Alcotest.fail "x carries no annotation");
  check_bool "unannotated task" true
    (Spec.annotation spec (Spec.task_of_name_exn spec "a") = None);
  (* printer renders the deps block and it parses back identically *)
  let printed = Wfdsl.to_string view in
  check_bool "printed deps block" true
    (let affix = "deps \"x\"" in
     let n = String.length printed and m = String.length affix in
     let rec go i = i + m <= n && (String.sub printed i m = affix || go (i + 1)) in
     go 0);
  let spec', _ = ok (Wfdsl.of_string printed) in
  check_bool "round trip keeps annotations" true (Spec.has_annotations spec');
  let x' = Spec.task_of_name_exn spec' "x" in
  Alcotest.(check (list (pair string (list string))))
    "round-tripped entries"
    [ ("c", [ "a"; "b" ]); ("d", []) ]
    (List.sort compare
       (List.map
          (fun (o, ins) ->
            (Spec.task_name spec' o, List.map (Spec.task_name spec') ins))
          (Option.get (Spec.annotation spec' x'))))

let test_deps_source_map () =
  let _, _, sm = ok (Wfdsl.of_string_with_source annotated_sample) in
  (match List.assoc_opt "x" sm.Wfdsl.deps_decls with
   | Some p ->
     check_int "deps decl line" 13 p.Wfdsl.pos_line;
     check_int "deps decl column" 8 p.Wfdsl.pos_column
   | None -> Alcotest.fail "deps decl not in source map");
  match List.assoc_opt ("x", "c") sm.Wfdsl.deps_entries with
  | Some p -> check_int "entry line" 14 p.Wfdsl.pos_line
  | None -> Alcotest.fail "deps entry not in source map"

let test_deps_errors () =
  let cases =
    [ (* deps on an undeclared task *)
      ( {|workflow "w" { task "a"; task "b"; "a" -> "b"; deps "z" { "b" <- "a"; } }|},
        "unknown task \"z\"" );
      (* entry referencing an undeclared task *)
      ( {|workflow "w" { task "a"; task "b"; "a" -> "b"; deps "a" { "b" <- "q"; } }|},
        "unknown task \"q\"" );
      (* malformed: missing the arrow *)
      ( {|workflow "w" { task "a"; task "b"; "a" -> "b"; deps "a" { "b" "a"; } }|},
        "expected '<-'" ) ]
  in
  List.iter
    (fun (src, fragment) ->
      match Wfdsl.of_string src with
      | Ok _ -> Alcotest.failf "expected %S to fail (%s)" src fragment
      | Error e ->
        let msg = Format.asprintf "%a" Wfdsl.pp_error e in
        let contains =
          let ln = String.length fragment and lh = String.length msg in
          let rec go i =
            i + ln <= lh && (String.sub msg i ln = fragment || go (i + 1))
          in
          go 0
        in
        check_bool (Printf.sprintf "%s in %s" fragment msg) true contains)
    cases

(* The satellite property: rendering any generated view to .wf text and
   parsing it back preserves the specification (tasks, edges, attributes'
   carrier) and the exact partition, across every generator family and
   view policy. *)
let prop_dsl_roundtrip =
  QCheck2.Test.make
    ~name:"of_string (to_string view) preserves spec and partition"
    ~count:120
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 2 50) (int_range 1 8))
    (fun (seed, size, k) ->
      let family =
        List.nth Gen.all_families (seed mod List.length Gen.all_families)
      in
      let spec = Gen.generate family ~seed ~size in
      let policy =
        match seed mod 4 with
        | 0 -> Views.Topological_bands k
        | 1 -> Views.Connected_groups k
        | 2 -> Views.Random_partition k
        | _ -> Views.Sound_groups k
      in
      let view = Views.build ~seed policy spec in
      let edge_names s =
        List.sort compare
          (Wolves_graph.Digraph.fold_edges
             (fun u v acc -> (Spec.task_name s u, Spec.task_name s v) :: acc)
             (Spec.graph s) [])
      in
      let task_names s =
        List.sort compare (List.map (Spec.task_name s) (Spec.tasks s))
      in
      let partition v =
        List.sort compare
          (List.map
             (fun c ->
               ( View.composite_name v c,
                 List.sort compare
                   (List.map (Spec.task_name (View.spec v)) (View.members v c))
               ))
             (View.composites v))
      in
      match Wfdsl.of_string (Wfdsl.to_string view) with
      | Error _ -> false
      | Ok (spec', view') ->
        Spec.name spec = Spec.name spec'
        && task_names spec = task_names spec'
        && edge_names spec = edge_names spec'
        && partition view = partition view')

(* Cross-format: DSL and MoML agree on generated views. *)
let prop_cross_format =
  QCheck2.Test.make ~name:"DSL and MoML round-trip to the same view" ~count:80
    QCheck2.Gen.(triple (int_range 0 100_000) (int_range 4 40) (int_range 1 6))
    (fun (seed, size, k) ->
      let family = List.nth Gen.all_families (seed mod 4) in
      let spec = Gen.generate family ~seed ~size in
      let view = Views.build ~seed (Views.Connected_groups k) spec in
      match
        (Wfdsl.of_string (Wfdsl.to_string view), Moml.of_string (Moml.to_string view))
      with
      | Ok (s1, v1), Ok (s2, v2) ->
        Spec.n_tasks s1 = Spec.n_tasks s2
        && Spec.n_dependencies s1 = Spec.n_dependencies s2
        && View.n_composites v1 = View.n_composites v2
        && List.for_all
             (fun c ->
               let name = View.composite_name v1 c in
               match View.composite_of_name v2 name with
               | None -> false
               | Some c' ->
                 List.map (Spec.task_name s1) (View.members v1 c)
                 = List.map (Spec.task_name s2) (View.members v2 c'))
             (View.composites v1)
      | _ -> false)

let prop_dsl_fuzz =
  QCheck2.Test.make ~name:"DSL parser total on random bytes" ~count:300
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 120))
    (fun input ->
      match Wfdsl.of_string input with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_lang"
    [ ( "wfdsl",
        [ Alcotest.test_case "sample document" `Quick test_parse_sample;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "task attributes end to end" `Quick test_attributes;
          Alcotest.test_case "figure 1 round trip" `Quick test_roundtrip_figure1;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "load errors carry the file" `Quick
            test_load_error_positions;
          Alcotest.test_case "source map" `Quick test_source_map;
          Alcotest.test_case "deps blocks parse and round trip" `Quick
            test_deps_parse_and_roundtrip;
          Alcotest.test_case "deps source map" `Quick test_deps_source_map;
          Alcotest.test_case "deps errors" `Quick test_deps_errors;
          qt prop_dsl_roundtrip;
          qt prop_cross_format;
          qt prop_dsl_fuzz ] ) ]
