(* Tests for the lint subsystem: fixture files seeded with exactly one
   defect per rule, determinism of the diagnostic order, the autofix
   fixpoint (idempotence + soundness unchanged-or-improved), and the SARIF
   backend's structure. *)

open Wolves_workflow
module D = Wolves_lint.Diagnostic
module Rules = Wolves_lint.Rules
module Lint = Wolves_lint.Lint
module Fix = Wolves_lint.Fix
module Sarif = Wolves_lint.Sarif
module S = Wolves_core.Soundness
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views
module Metrics = Wolves_obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fixture name = Filename.concat "fixtures/lint" name

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let run_fixture ?config name =
  match Lint.run_file ?config (fixture name) with
  | Ok ds -> ds
  | Error msg -> Alcotest.failf "lint %s: %s" name msg

let rules_of ds = List.sort_uniq compare (List.map (fun d -> d.D.rule) ds)

let warnings_config = { Lint.default_config with threshold = D.Warning }

let only_rule id =
  { Lint.default_config with rules = Some [ id ] }

(* --- the rule registry --- *)

let test_registry () =
  check_bool "at least 10 rules" true (List.length Rules.all >= 10);
  let ids = List.map (fun m -> m.Rules.id) Rules.all in
  check_int "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id -> check_bool id true (Rules.find id <> None))
    ids;
  check_bool "unknown id" true (Rules.find "spec/phlogiston" = None);
  let layers = List.sort_uniq compare (List.map (fun m -> m.Rules.layer) Rules.all) in
  check_int "three layers populated" 3 (List.length layers)

let test_validate_config () =
  check_bool "default ok" true (Lint.validate_config Lint.default_config = Ok ());
  check_bool "whitelist ok" true
    (Lint.validate_config (only_rule "spec/orphan-task") = Ok ());
  (match Lint.validate_config (only_rule "spec/no-such-rule") with
   | Error msg ->
     check_bool "names the rule" true (contains ~affix:"spec/no-such-rule" msg)
   | Ok () -> Alcotest.fail "unknown rule accepted");
  (match Lint.validate_config { Lint.default_config with disabled = [ "nope" ] } with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "unknown disabled rule accepted");
  (* A non-positive fan threshold is a configuration error, not a silent
     no-op. *)
  (match Lint.validate_config { Lint.default_config with fan_threshold = 0 } with
   | Error msg -> check_bool "names the threshold" true (contains ~affix:"0" msg)
   | Ok () -> Alcotest.fail "fan threshold 0 accepted");
  (match Lint.validate_config { Lint.default_config with fan_threshold = -3 } with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "negative fan threshold accepted");
  (* Duplicate rule ids — within a list or across --rules/--disable — are
     rejected with a message naming the rule. *)
  (match
     Lint.validate_config
       { Lint.default_config with
         rules = Some [ "spec/orphan-task"; "spec/orphan-task" ] }
   with
   | Error msg ->
     check_bool "duplicate in whitelist named" true
       (contains ~affix:"spec/orphan-task" msg)
   | Ok () -> Alcotest.fail "duplicate whitelist entry accepted");
  (match
     Lint.validate_config
       { Lint.default_config with
         rules = Some [ "spec/dead-data" ];
         disabled = [ "spec/dead-data" ] }
   with
   | Error msg ->
     check_bool "cross-list duplicate named" true
       (contains ~affix:"spec/dead-data" msg)
   | Ok () -> Alcotest.fail "cross-list duplicate accepted");
  check_bool "distinct ids across lists ok" true
    (Lint.validate_config
       { Lint.default_config with
         rules = Some [ "spec/orphan-task"; "spec/dead-data" ];
         disabled = [ "dsl/unused-task" ] }
    = Ok ())

(* --- one fixture per rule: each triggers exactly its seeded defect --- *)

let test_fixture_rules () =
  let cases =
    [ ("unsound.wf", [ "view/unsound-composite" ]);
      ("redundant.wf", [ "spec/redundant-edge" ]);
      ("disconnected.wf", [ "spec/disconnected" ]);
      ("orphan.wf", [ "spec/orphan-task" ]);
      ("unused.wf", [ "dsl/unused-task" ]);
      ("duplicate.wf", [ "dsl/duplicate-edge" ]);
      ("shadowed.wf", [ "dsl/shadowed-name" ]);
      ("degenerate.wf", [ "view/degenerate-composite" ]);
      ("monolithic.wf", [ "view/monolithic-view" ]);
      ("inconsistent.wf", [ "spec/annotation-inconsistent" ]);
      ("incomplete.wf", [ "spec/annotation-incomplete" ]);
      ("deaddata.wf", [ "spec/dead-data" ]);
      ("hidden.wf", [ "view/hidden-dependency" ]);
      ("clean.wf", []) ]
  in
  List.iter
    (fun (name, expected) ->
      let ds = run_fixture ~config:warnings_config name in
      Alcotest.(check (list string)) name expected (rules_of ds))
    cases

let test_hint_fixtures () =
  let combinable =
    run_fixture ~config:(only_rule "view/combinable-composites") "combinable.wf"
  in
  Alcotest.(check (list string)) "combinable"
    [ "view/combinable-composites" ] (rules_of combinable);
  check_bool "merge fix attached" true
    (List.exists
       (fun d ->
         match d.D.fix with Some (D.Merge_composites _) -> true | _ -> false)
       combinable);
  match run_fixture ~config:(only_rule "spec/fan-bottleneck") "fanout.wf" with
  | [ d ] ->
    check_bool "hint severity" true (d.D.severity = D.Hint);
    check_bool "hub anchor" true (d.D.location.D.anchor = D.Task "hub");
    check_bool "no fix" true (d.D.fix = None)
  | ds -> Alcotest.failf "fan-bottleneck fired %d times" (List.length ds)

let test_unsound_details () =
  match run_fixture ~config:warnings_config "unsound.wf" with
  | [ d ] ->
    check_string "rule" "view/unsound-composite" d.D.rule;
    check_bool "error severity" true (d.D.severity = D.Error);
    check_bool "split fix" true (d.D.fix = Some (D.Split_composite "par"));
    check_bool "anchored at the composite" true
      (d.D.location.D.anchor = D.Composite "par");
    (match d.D.location.D.position with
     | Some p ->
       (* the composite declaration in the fixture *)
       check_int "line" 15 p.D.line;
       check_int "column" 13 p.D.column
     | None -> Alcotest.fail "no source position");
    check_bool "witness related locations" true (List.length d.D.related >= 2)
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_severity_threshold () =
  let errors_only = { Lint.default_config with threshold = D.Error } in
  check_int "redundant.wf has no errors" 0
    (List.length (run_fixture ~config:errors_only "redundant.wf"));
  check_int "unsound.wf keeps its error" 1
    (List.length (run_fixture ~config:errors_only "unsound.wf"));
  let all = run_fixture "fanout.wf" in
  check_bool "hint threshold sees the bottleneck" true
    (List.mem "spec/fan-bottleneck" (rules_of all))

(* --- determinism --- *)

let test_determinism () =
  List.iter
    (fun family ->
      List.iter
        (fun seed ->
          let spec = Gen.generate family ~seed ~size:40 in
          let view =
            Views.inject_unsoundness ~seed ~attempts:20
              (Views.build ~seed (Views.Connected_groups 4) spec)
          in
          let once = Lint.run view and twice = Lint.run view in
          check_bool
            (Printf.sprintf "deterministic (%s, seed %d)"
               (Gen.family_name family) seed)
            true (once = twice);
          check_bool "sorted" true
            (List.sort D.compare once = once))
        [ 0; 1; 2 ])
    Gen.all_families

(* --- autofix --- *)

let structural_fixable ds =
  List.exists
    (fun d ->
      match d.D.fix with
      | Some (D.Canonicalize _) | None -> false
      | Some _ -> true)
    ds

let test_fix_idempotent () =
  List.iter
    (fun family ->
      List.iter
        (fun seed ->
          let spec = Gen.generate family ~seed ~size:40 in
          let view =
            Views.inject_unsoundness ~seed ~attempts:20
              (Views.build ~seed (Views.Connected_groups 4) spec)
          in
          let fixed, applied = Fix.apply view in
          let name =
            Printf.sprintf "(%s, seed %d)" (Gen.family_name family) seed
          in
          (* Unsound views must come back sound; sound ones stay sound. *)
          check_bool ("fixed sound " ^ name) true (S.is_sound fixed);
          if not (S.is_sound view) then
            check_bool ("something applied " ^ name) true (applied <> []);
          (* Re-linting the result yields no fixable diagnostic... *)
          check_bool ("no fixable left " ^ name) false
            (structural_fixable (Lint.run fixed));
          (* ...so a second pass is a no-op. *)
          let fixed2, applied2 = Fix.apply fixed in
          check_bool ("second pass no-op " ^ name) true (applied2 = []);
          check_bool ("second pass same size " ^ name) true
            (View.n_composites fixed2 = View.n_composites fixed))
        [ 0; 1 ])
    Gen.all_families

let copy_to_temp name =
  let contents = In_channel.with_open_text (fixture name) In_channel.input_all in
  let path = Filename.temp_file "lint" ".wf" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents);
  path

let test_fix_file () =
  List.iter
    (fun name ->
      let path = copy_to_temp name in
      (match Fix.fix_file path with
       | Ok applied -> check_bool (name ^ " applied") true (applied <> [])
       | Error msg -> Alcotest.failf "fix %s: %s" name msg);
      (match Fix.fix_file path with
       | Ok applied -> check_bool (name ^ " idempotent") true (applied = [])
       | Error msg -> Alcotest.failf "re-fix %s: %s" name msg);
      (match Lint.run_file path with
       | Ok ds -> check_bool (name ^ " nothing fixable") false (structural_fixable ds)
       | Error msg -> Alcotest.failf "re-lint %s: %s" name msg);
      Sys.remove path)
    [ "unsound.wf"; "redundant.wf"; "duplicate.wf"; "degenerate.wf" ]

let test_fix_inserts_annotation () =
  (* incomplete.wf's only defect is a missing deps entry; the fix engine
     must insert the inferred entry into the document itself. *)
  let path = copy_to_temp "incomplete.wf" in
  (match Fix.fix_file path with
   | Ok applied ->
     check_bool "annotation fix applied" true
       (List.exists
          (fun a ->
            match a.Fix.fix with
            | D.Add_annotation ("x", _) -> true
            | _ -> false)
          applied)
   | Error msg -> Alcotest.failf "fix incomplete: %s" msg);
  let after = In_channel.with_open_text path In_channel.input_all in
  check_bool "inferred entry written" true (contains ~affix:"\"d\" <-" after);
  (match Lint.run_file ~config:warnings_config path with
   | Ok ds ->
     check_bool "incomplete resolved" false
       (List.mem "spec/annotation-incomplete" (rules_of ds))
   | Error msg -> Alcotest.failf "re-lint incomplete: %s" msg);
  Sys.remove path

let test_fix_preserves_soundness () =
  (* clean.wf is already sound: fixing must not disturb its verdict. *)
  let path = copy_to_temp "clean.wf" in
  let before = In_channel.with_open_text path In_channel.input_all in
  (match Fix.fix_file path with
   | Ok applied ->
     check_bool "nothing structural on clean input" true
       (List.for_all (fun a -> match a.Fix.fix with
            | D.Canonicalize _ -> true | _ -> false) applied)
   | Error msg -> Alcotest.failf "fix clean: %s" msg);
  let after = In_channel.with_open_text path In_channel.input_all in
  check_string "clean file untouched" before after;
  Sys.remove path

(* --- SARIF --- *)

let test_sarif () =
  let ds = run_fixture "unsound.wf" in
  let doc = Sarif.report ds in
  List.iter
    (fun affix -> check_bool affix true (contains ~affix doc))
    [ "\"version\": \"2.1.0\"";
      "sarif-2.1.0.json";
      "\"name\": \"wolves-lint\"";
      "\"ruleId\": \"view/unsound-composite\"";
      "\"level\": \"error\"";
      "physicalLocation";
      "\"startLine\": 15";
      "relatedLocations";
      "logicalLocations";
      (* every rule carries a helpUri into the shared RULES.md catalogue,
         slugged the way GitHub slugs headings *)
      "\"helpUri\"";
      "docs/RULES.md#viewunsound-composite";
      "docs/RULES.md#specannotation-incomplete";
      "\"fixable\": true";
      "\"fixable\": false" ];
  (* the rule catalogue is embedded even for rules that did not fire *)
  check_bool "catalogue" true (contains ~affix:"\"id\": \"dsl/duplicate-edge\"" doc);
  (* empty reports are still a complete SARIF document *)
  let empty = Sarif.report [] in
  check_bool "empty doc has runs" true (contains ~affix:"\"runs\"" empty);
  check_bool "empty doc has no results" true
    (contains ~affix:"\"results\": []" empty)

(* --- observability --- *)

let test_metrics () =
  Metrics.reset ();
  let hits = Metrics.counter "lint.hits.view.unsound-composite" in
  let targets = Metrics.counter "lint.targets" in
  Metrics.enabled (fun () -> ignore (run_fixture "unsound.wf"));
  check_int "unsound hit recorded" 1 (Metrics.counter_value hits);
  check_int "one target" 1 (Metrics.counter_value targets);
  Metrics.reset ()

let () =
  Alcotest.run "lint"
    [ ( "registry",
        [ Alcotest.test_case "metadata" `Quick test_registry;
          Alcotest.test_case "config validation" `Quick test_validate_config ] );
      ( "rules",
        [ Alcotest.test_case "fixtures trigger their rule" `Quick test_fixture_rules;
          Alcotest.test_case "hint-level fixtures" `Quick test_hint_fixtures;
          Alcotest.test_case "unsound witness detail" `Quick test_unsound_details;
          Alcotest.test_case "severity threshold" `Quick test_severity_threshold;
          Alcotest.test_case "determinism" `Quick test_determinism ] );
      ( "fix",
        [ Alcotest.test_case "idempotent fixpoint" `Quick test_fix_idempotent;
          Alcotest.test_case "fix_file in place" `Quick test_fix_file;
          Alcotest.test_case "inferred annotation inserted" `Quick
            test_fix_inserts_annotation;
          Alcotest.test_case "clean input untouched" `Quick test_fix_preserves_soundness ] );
      ( "output",
        [ Alcotest.test_case "sarif structure" `Quick test_sarif;
          Alcotest.test_case "metrics counters" `Quick test_metrics ] ) ]
