(* The Wolves_obs observability stack: the metrics registry (enable-flag
   gating, counter/gauge/timer semantics, span nesting, shard merges, reset,
   a round-trip through the JSON dump), the monotonic clock's clamping, the
   structured JSONL logger, and the Prometheus exposition
   renderer/validator. *)

module M = Wolves_obs.Metrics
module L = Wolves_obs.Log
module P = Wolves_obs.Prom
module Clk = Wolves_obs.Clock

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* A tiny JSON reader, just enough to round-trip the registry dump.    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else raise (Bad_json (Printf.sprintf "expected %c at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      if !pos >= n then raise (Bad_json "unterminated string");
      (match s.[!pos] with
       | '"' -> closed := true
       | '\\' ->
         incr pos;
         if !pos >= n then raise (Bad_json "truncated escape");
         (match s.[!pos] with
          | 'n' -> Buffer.add_char buf '\n'
          | c -> Buffer.add_char buf c)
       | c -> Buffer.add_char buf c);
      incr pos
    done;
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let more = ref true in
        while !more do
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some '}' ->
            incr pos;
            more := false
          | _ -> raise (Bad_json "bad object")
        done;
        Obj (List.rev !fields)
      end
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let items = ref [] in
        let more = ref true in
        while !more do
          items := parse_value () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some ']' ->
            incr pos;
            more := false
          | _ -> raise (Bad_json "bad array")
        done;
        Arr (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 'n' ->
      pos := !pos + 4;
      Null
    | Some 't' ->
      pos := !pos + 4;
      Bool true
    | Some 'f' ->
      pos := !pos + 5;
      Bool false
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr pos
      done;
      if !pos = start then raise (Bad_json "bad value");
      Num (float_of_string (String.sub s start (!pos - start)))
    | None -> raise (Bad_json "unexpected end of input")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let member key = function
  | Obj fields ->
    (match List.assoc_opt key fields with
     | Some v -> v
     | None -> Alcotest.failf "JSON member %S missing" key)
  | _ -> Alcotest.failf "JSON member %S looked up in a non-object" key

let as_num = function
  | Num f -> f
  | _ -> Alcotest.fail "expected a JSON number"

(* ------------------------------------------------------------------ *)
(* counters, gauges                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_gating () =
  M.reset ();
  M.set_enabled false;
  let c = M.counter "test.gating" in
  M.incr c;
  M.add c 10;
  check_int "disabled recording is a no-op" 0 (M.counter_value c);
  M.enabled (fun () ->
      M.incr c;
      M.add c 4);
  check_int "enabled recording counts" 5 (M.counter_value c);
  check_bool "enabled restores the flag" false (M.is_enabled ())

let test_registration_idempotent () =
  M.reset ();
  let a = M.counter "test.same" in
  let b = M.counter "test.same" in
  M.enabled (fun () -> M.incr a);
  check_int "same name, same counter" 1 (M.counter_value b);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"test.same\" is already registered as a counter")
    (fun () -> ignore (M.timer "test.same"))

let test_gauge () =
  M.reset ();
  let g = M.gauge "test.gauge" in
  check_bool "unset gauge reads None" true (M.gauge_value g = None);
  M.set g 1.5;
  check_bool "disabled set ignored" true (M.gauge_value g = None);
  M.enabled (fun () -> M.set g 2.5);
  check_bool "set gauge reads back" true (M.gauge_value g = Some 2.5)

(* ------------------------------------------------------------------ *)
(* timers                                                              *)
(* ------------------------------------------------------------------ *)

let test_timer_observe () =
  M.reset ();
  let t = M.timer "test.timer" in
  M.enabled (fun () ->
      M.observe t 1e-8;
      M.observe t 0.5;
      M.observe t (-1.0) (* clamped to 0 *));
  let st = M.timer_stats t in
  check_int "count" 3 st.M.count;
  check (Alcotest.float 1e-9) "sum" (0.5 +. 1e-8) st.M.sum;
  check (Alcotest.float 1e-9) "max" 0.5 st.M.max;
  check_int "buckets account for every observation" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 st.M.buckets);
  (* Each observation in a bucket whose bound covers it. *)
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "some bucket bound covers %g" d)
        true
        (List.exists (fun (bound, n) -> n > 0 && d <= bound) st.M.buckets))
    [ 0.0; 1e-8; 0.5 ]

let test_timer_time () =
  M.reset ();
  let t = M.timer "test.time" in
  let r = M.enabled (fun () -> M.time t (fun () -> 41 + 1)) in
  check_int "time returns the thunk's value" 42 r;
  check_int "one observation" 1 (M.timer_stats t).M.count;
  (try
     M.enabled (fun () -> M.time t (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_int "observed also on exception" 2 (M.timer_stats t).M.count

(* ------------------------------------------------------------------ *)
(* spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  M.reset ();
  M.enabled (fun () ->
      M.with_span "outer" (fun () ->
          check_bool "outer open" true (M.span_stack () = [ "outer" ]);
          M.with_span "inner" (fun () ->
              check_bool "inner nested" true
                (M.span_stack () = [ "inner"; "outer" ]));
          check_bool "inner closed" true (M.span_stack () = [ "outer" ])));
  check_bool "all spans closed" true (M.span_stack () = []);
  check_int "outer timer recorded" 1
    (M.timer_stats (M.timer "span:outer")).M.count;
  check_int "nested timer keyed by path" 1
    (M.timer_stats (M.timer "span:outer/inner")).M.count

let test_span_unwinds_on_exception () =
  M.reset ();
  (try
     M.enabled (fun () ->
         M.with_span "fails" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_bool "stack unwound" true (M.span_stack () = []);
  check_int "duration still recorded" 1
    (M.timer_stats (M.timer "span:fails")).M.count

(* ------------------------------------------------------------------ *)
(* tracer hook                                                         *)
(* ------------------------------------------------------------------ *)

let test_tracer_hooks () =
  M.reset ();
  M.set_enabled false;
  let log = ref [] in
  let tracer =
    { M.on_begin = (fun name args -> log := `B (name, args ()) :: !log);
      on_end = (fun name -> log := `E name :: !log);
      on_instant = (fun name args -> log := `I (name, args ()) :: !log) }
  in
  let t = M.timer "test.tracer.t" in
  M.with_tracer tracer (fun () ->
      M.time t ~args:(fun () -> [ ("k", "v") ]) (fun () -> ());
      M.with_span "outer" (fun () -> M.with_span "inner" (fun () -> ()));
      M.instant "tick" (fun () -> [ ("n", "1") ]));
  check_bool "tracer removed afterwards" false (M.has_tracer ());
  let expected =
    [ `B ("test.tracer.t", [ ("k", "v") ]); `E "test.tracer.t";
      `B ("outer", []); `B ("inner", []); `E "inner"; `E "outer";
      `I ("tick", [ ("n", "1") ]) ]
  in
  check_bool "events in order with args" true (List.rev !log = expected);
  (* Tracing is independent of metric recording: the flag stayed off, so
     the timer saw nothing even though the tracer saw everything. *)
  check_int "no histogram recorded while disabled" 0 (M.timer_stats t).M.count;
  M.time t (fun () -> ());
  M.instant "tick" (fun () -> []);
  check_bool "no events after uninstall" true (List.length !log = 7)

let test_tracer_args_lazy () =
  M.reset ();
  M.set_enabled false;
  let forced = ref 0 in
  let args () =
    incr forced;
    []
  in
  let t = M.timer "test.tracer.lazy" in
  M.time t ~args (fun () -> ());
  M.with_span "s" ~args (fun () -> ());
  M.instant "i" args;
  check_int "args never forced without a tracer" 0 !forced;
  (* The thunk reaches the tracer unforced, so a dropping tracer (the
     server's sampling gate) costs nothing for annotations either. *)
  let dropping =
    { M.on_begin = (fun _ _ -> ());
      on_end = (fun _ -> ());
      on_instant = (fun _ _ -> ()) }
  in
  M.with_tracer dropping (fun () ->
      M.time t ~args (fun () -> ());
      M.instant "i" args);
  check_int "args never forced by a dropping tracer" 0 !forced

(* ------------------------------------------------------------------ *)
(* reset, snapshot, JSON                                               *)
(* ------------------------------------------------------------------ *)

let test_reset () =
  M.reset ();
  let c = M.counter "test.reset.c" in
  let g = M.gauge "test.reset.g" in
  let t = M.timer "test.reset.t" in
  M.enabled (fun () ->
      M.incr c;
      M.set g 7.0;
      M.observe t 0.25);
  M.reset ();
  check_int "counter zeroed" 0 (M.counter_value c);
  check_bool "gauge unset" true (M.gauge_value g = None);
  check_int "timer emptied" 0 (M.timer_stats t).M.count;
  M.enabled (fun () -> M.incr c);
  check_int "registration survives reset" 1 (M.counter_value c)

(* Regression test: a reset issued while spans are open (as the bench
   driver does between sections) used to leave the stale stack entries in
   place, so later spans recorded under corrupted [outer/...] paths. *)
let test_reset_unwinds_span_stack () =
  M.reset ();
  M.enabled (fun () ->
      M.with_span "outer" (fun () ->
          M.reset ();
          check_bool "reset empties the open-span stack" true
            (M.span_stack () = []);
          M.with_span "fresh" (fun () ->
              check_bool "new spans open at the top level" true
                (M.span_stack () = [ "fresh" ]))));
  check_int "post-reset span recorded under its own path" 1
    (M.timer_stats (M.timer "span:fresh")).M.count;
  check_int "not under the pre-reset parent" 0
    (M.timer_stats (M.timer "span:outer/fresh")).M.count

let test_json_round_trip () =
  M.reset ();
  let c = M.counter "test.rt.c" in
  let g = M.gauge "test.rt.g" in
  let t = M.timer "test.rt.t" in
  M.enabled (fun () ->
      M.incr c;
      M.add c 2;
      M.set g 2.5;
      M.observe t 1e-8;
      M.observe t 1e-8;
      M.observe t 0.5);
  let doc = parse_json (M.dump_json ()) in
  (* the dump leads with the shared log-scale bucket bounds, so consumers
     of the per-timer bucket maps never have to re-derive the scale *)
  (match member "bucket_bounds_s" doc with
  | Arr bounds ->
      check_int "one bound per bucket"
        (Array.length M.bucket_bounds)
        (List.length bounds);
      List.iteri
        (fun i b ->
          match (b, M.bucket_bounds.(i)) with
          | Null, expected ->
              check_bool "only the unbounded bucket is null" true
                (expected = infinity)
          | Num got, expected ->
              (* %.12g keeps 12 significant digits, so compare relatively *)
              check_bool
                (Printf.sprintf "bound %d round-trips" i)
                true
                (Float.abs (got -. expected) <= 1e-9 *. expected)
          | _ -> Alcotest.failf "bound %d is not a number" i)
        bounds
  | _ -> Alcotest.fail "bucket_bounds_s is an array");
  check (Alcotest.float 0.0) "counter round-trips" 3.0
    (as_num (member "test.rt.c" (member "counters" doc)));
  check (Alcotest.float 0.0) "gauge round-trips" 2.5
    (as_num (member "test.rt.g" (member "gauges" doc)));
  let timer = member "test.rt.t" (member "timers" doc) in
  check (Alcotest.float 0.0) "timer count round-trips" 3.0
    (as_num (member "count" timer));
  check (Alcotest.float 1e-12) "timer sum round-trips" (0.5 +. 2e-8)
    (as_num (member "sum_s" timer));
  check (Alcotest.float 0.0) "timer max round-trips" 0.5
    (as_num (member "max_s" timer));
  let buckets =
    match member "buckets" timer with
    | Obj fields -> fields
    | _ -> Alcotest.fail "buckets is an object"
  in
  check (Alcotest.float 0.0) "bucket totals round-trip" 3.0
    (List.fold_left (fun acc (_, v) -> acc +. as_num v) 0.0 buckets);
  check_bool "only non-empty buckets emitted" true
    (List.for_all (fun (_, v) -> as_num v > 0.0) buckets)

(* ------------------------------------------------------------------ *)
(* shard merges: gauges are high-water marks                           *)
(* ------------------------------------------------------------------ *)

let test_gauge_merge_high_water () =
  M.reset ();
  let g = M.gauge "test.merge.g" in
  M.enabled (fun () ->
      M.set g 3.0;
      let (), sh_high = M.with_new_shard (fun () -> M.set g 7.0) in
      let (), sh_low = M.with_new_shard (fun () -> M.set g 5.0) in
      (* merge order must not matter: the registry keeps the worst level
         any worker saw *)
      M.merge_shard sh_high;
      check_bool "higher shard raises the gauge" true
        (M.gauge_value g = Some 7.0);
      M.merge_shard sh_low;
      check_bool "lower shard cannot lower it" true
        (M.gauge_value g = Some 7.0);
      (* a coordinator that needs to overwrite uses a direct set *)
      M.set g 1.0;
      check_bool "direct set overwrites the high-water mark" true
        (M.gauge_value g = Some 1.0));
  (* a never-set gauge adopts the shard's value on first merge *)
  let fresh = M.gauge "test.merge.fresh" in
  M.enabled (fun () ->
      let (), sh = M.with_new_shard (fun () -> M.set fresh 2.0) in
      M.merge_shard sh);
  check_bool "unset gauge adopts the merged value" true
    (M.gauge_value fresh = Some 2.0)

(* ------------------------------------------------------------------ *)
(* clock clamping, percentile estimation                               *)
(* ------------------------------------------------------------------ *)

let test_clock_clamping () =
  check (Alcotest.float 0.0) "a future start clamps to zero" 0.0
    (Clk.elapsed_since (Clk.now () +. 1000.));
  check_bool "normal elapsed is non-negative" true
    (Clk.elapsed_since (Clk.now ()) >= 0.);
  let v, dt = Clk.time (fun () -> 41 + 1) in
  check_int "time returns the thunk's value" 42 v;
  check_bool "timed duration is non-negative" true (dt >= 0.)

(* The log-scale histogram guarantees percentile estimates within the
   bucket growth factor: for a true quantile x >= 4ns, x <= estimate <= 4x
   (clamped to the observed max). *)
let test_percentile_bounds () =
  M.reset ();
  let t = M.timer "test.pct" in
  check (Alcotest.float 0.0) "empty timer estimates 0" 0.0
    (P.percentile (M.timer_stats t) 0.5);
  M.enabled (fun () ->
      for _ = 1 to 50 do M.observe t 1e-3 done;
      for _ = 1 to 50 do M.observe t 1e-1 done);
  let st = M.timer_stats t in
  List.iter
    (fun (q, exact) ->
      let est = P.percentile st q in
      check_bool
        (Printf.sprintf "p%.0f estimate %g within [x, 4x] of %g" (q *. 100.)
           est exact)
        true
        (exact <= est +. 1e-12 && est <= (4. *. exact) +. 1e-12))
    [ (0.25, 1e-3); (0.5, 1e-3); (0.75, 1e-1); (0.99, 1e-1) ];
  (* the unbounded bucket and q=1 clamp to the observed maximum *)
  check (Alcotest.float 1e-12) "p100 is the max" 1e-1 (P.percentile st 1.0);
  (* all-equal observations: the clamp makes the estimate exact *)
  let u = M.timer "test.pct.uniform" in
  M.enabled (fun () -> for _ = 1 to 9 do M.observe u 2e-2 done);
  check (Alcotest.float 1e-12) "uniform sample is exact via the max clamp"
    2e-2
    (P.percentile (M.timer_stats u) 0.5)

(* ------------------------------------------------------------------ *)
(* structured logging                                                  *)
(* ------------------------------------------------------------------ *)

let test_log_disabled_is_free () =
  L.set None;
  let forced = ref 0 in
  L.event L.Info "nope" (fun () ->
      incr forced;
      []);
  check_int "field thunk never forced without a sink" 0 !forced;
  check_bool "nothing enabled" false (L.enabled L.Error)

let test_log_levels_and_format () =
  L.set None;
  let buf = Buffer.create 256 in
  L.with_sink ~level:L.Info (L.buffer_sink buf) (fun () ->
      check_bool "info enabled" true (L.enabled L.Info);
      check_bool "warn enabled" true (L.enabled L.Warn);
      check_bool "debug filtered" false (L.enabled L.Debug);
      let forced = ref 0 in
      L.event L.Debug "dropped" (fun () ->
          incr forced;
          []);
      check_int "below-threshold thunk not forced" 0 !forced;
      L.event L.Info "req" (fun () ->
          [ ("verb", L.Str "va\"l\nue");
            ("n", L.Int 42);
            ("ratio", L.Float 0.5);
            ("bad", L.Float Float.nan);
            ("ok", L.Bool true) ]));
  check_bool "sink uninstalled afterwards" true (L.current () = None);
  let lines =
    Buffer.contents buf |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check_int "exactly one record written" 1 (List.length lines);
  let record = List.hd lines in
  match parse_json record with
  | Obj fields ->
      check_bool "ts leads and is numeric" true
        (match fields with
        | ("ts", Num ts) :: _ -> ts > 0.
        | _ -> false);
      Alcotest.(check (list string))
        "field order preserved after the header"
        [ "ts"; "level"; "event"; "verb"; "n"; "ratio"; "bad"; "ok" ]
        (List.map fst fields);
      check_bool "level rendered" true
        (List.assoc_opt "level" fields = Some (Str "info"));
      check_bool "event rendered" true
        (List.assoc_opt "event" fields = Some (Str "req"));
      check_bool "string escapes round-trip" true
        (List.assoc_opt "verb" fields = Some (Str "va\"l\nue"));
      check_bool "int rendered" true
        (List.assoc_opt "n" fields = Some (Num 42.));
      check_bool "non-finite float renders null" true
        (List.assoc_opt "bad" fields = Some Null);
      check_bool "bool rendered" true
        (List.assoc_opt "ok" fields = Some (Bool true))
  | _ -> Alcotest.failf "record is not a JSON object: %s" record

let test_log_with_sink_restores () =
  L.set None;
  let outer = Buffer.create 64 and inner = Buffer.create 64 in
  L.with_sink ~level:L.Warn (L.buffer_sink outer) (fun () ->
      L.with_sink ~level:L.Debug (L.buffer_sink inner) (fun () ->
          check_bool "inner level applies" true (L.enabled L.Debug);
          L.event L.Debug "in" (fun () -> []));
      check_bool "outer level restored" false (L.enabled L.Info);
      L.event L.Warn "out" (fun () -> []));
  check_bool "fully uninstalled" true (L.current () = None);
  check_bool "inner sink got the inner record" true
    (contains (Buffer.contents inner) "\"event\":\"in\"");
  check_bool "outer sink got only the outer record" true
    (contains (Buffer.contents outer) "\"event\":\"out\""
    && not (contains (Buffer.contents outer) "\"event\":\"in\""))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition: render and check                             *)
(* ------------------------------------------------------------------ *)

let test_prom_metric_name () =
  check_string "dots become underscores" "server_requests_total"
    (P.metric_name "server.requests.total");
  check_string "illegal chars become underscores" "a_b_c_d"
    (P.metric_name "a-b/c d");
  check_string "leading digit gains a prefix" "_9lives" (P.metric_name "9lives");
  check_string "legal names pass through" "already_fine:ok"
    (P.metric_name "already_fine:ok")

let test_prom_render_passes_check () =
  M.reset ();
  let c = M.counter "test.prom.c" in
  let g = M.gauge "test.prom.g" in
  let t = M.timer "test.prom.t" in
  let _empty = M.timer "test.prom.empty" in
  M.enabled (fun () ->
      M.add c 3;
      M.set g 1.5;
      M.observe t 1e-3;
      M.observe t 1e-1);
  let page = P.render (M.snapshot ()) in
  (match P.check page with
  | Ok n -> check_bool "non-trivial sample count" true (n >= 8)
  | Error e -> Alcotest.failf "render fails its own checker: %s" e);
  let lines = String.split_on_char '\n' page in
  check_bool "counter rendered as _total" true
    (List.mem "test_prom_c_total 3" lines);
  check_bool "gauge rendered verbatim" true (List.mem "test_prom_g 1.5" lines);
  check_bool "histogram terminal +Inf carries the count" true
    (List.mem "test_prom_t_seconds_bucket{le=\"+Inf\"} 2" lines);
  check_bool "histogram count matches" true
    (List.mem "test_prom_t_seconds_count 2" lines);
  check_bool "quantile gauges derived" true
    (List.exists
       (fun l -> contains l "test_prom_t_seconds_quantile{quantile=\"0.99\"}")
       lines);
  check_bool "empty timer omitted" false
    (List.exists (fun l -> contains l "test_prom_empty") lines)

let test_prom_check_rejects () =
  let histogram header buckets tail =
    String.concat "\n" (("# TYPE h histogram" :: header) @ buckets @ tail)
    ^ "\n"
  in
  List.iter
    (fun (name, page) ->
      match P.check page with
      | Ok _ -> Alcotest.failf "checker accepted %s" name
      | Error _ -> ())
    [ ("sample without TYPE", "foo 1\n");
      ("unknown type", "# TYPE foo widget\nfoo 1\n");
      ("unparsable value", "# TYPE x counter\nx_total one\n");
      ( "non-contiguous family",
        "# TYPE a counter\na_total 1\n# TYPE b counter\nb_total 1\na_total 2\n"
      );
      ( "le not increasing",
        histogram []
          [ "h_bucket{le=\"0.5\"} 1"; "h_bucket{le=\"0.1\"} 2";
            "h_bucket{le=\"+Inf\"} 2" ]
          [ "h_sum 0.6"; "h_count 2" ] );
      ( "counts not cumulative",
        histogram []
          [ "h_bucket{le=\"0.1\"} 5"; "h_bucket{le=\"0.5\"} 3";
            "h_bucket{le=\"+Inf\"} 5" ]
          [ "h_sum 0.9"; "h_count 5" ] );
      ( "missing terminal +Inf",
        histogram []
          [ "h_bucket{le=\"0.1\"} 1"; "h_bucket{le=\"0.5\"} 2" ]
          [ "h_sum 0.3"; "h_count 2" ] );
      ( "count disagrees with +Inf",
        histogram []
          [ "h_bucket{le=\"0.1\"} 1"; "h_bucket{le=\"+Inf\"} 2" ]
          [ "h_sum 0.2"; "h_count 3" ] ) ];
  (* and the well-formed variant of the same histogram passes *)
  match
    P.check
      (histogram []
         [ "h_bucket{le=\"0.1\"} 1"; "h_bucket{le=\"0.5\"} 2";
           "h_bucket{le=\"+Inf\"} 2" ]
         [ "h_sum 0.3"; "h_count 2" ])
  with
  | Ok n -> check_int "well-formed histogram accepted" 5 n
  | Error e -> Alcotest.failf "well-formed histogram rejected: %s" e

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter gating" `Quick test_counter_gating;
          Alcotest.test_case "idempotent registration" `Quick
            test_registration_idempotent;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "timer observe" `Quick test_timer_observe;
          Alcotest.test_case "timer time" `Quick test_timer_time;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span unwinds on exception" `Quick
            test_span_unwinds_on_exception;
          Alcotest.test_case "tracer hooks" `Quick test_tracer_hooks;
          Alcotest.test_case "tracer args stay lazy" `Quick
            test_tracer_args_lazy;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "reset unwinds the span stack" `Quick
            test_reset_unwinds_span_stack;
          Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "gauges merge as high-water marks" `Quick
            test_gauge_merge_high_water ] );
      ( "clock",
        [ Alcotest.test_case "elapsed_since clamps at zero" `Quick
            test_clock_clamping ] );
      ( "log",
        [ Alcotest.test_case "disabled logging is free" `Quick
            test_log_disabled_is_free;
          Alcotest.test_case "levels, field order, JSON rendering" `Quick
            test_log_levels_and_format;
          Alcotest.test_case "with_sink restores" `Quick
            test_log_with_sink_restores ] );
      ( "prom",
        [ Alcotest.test_case "metric name sanitiser" `Quick
            test_prom_metric_name;
          Alcotest.test_case "percentile error bounds" `Quick
            test_percentile_bounds;
          Alcotest.test_case "render passes check" `Quick
            test_prom_render_passes_check;
          Alcotest.test_case "check rejects malformed pages" `Quick
            test_prom_check_rejects ] ) ]
