(* The Wolves_obs metrics registry: enable-flag gating, counter/gauge/timer
   semantics, span nesting, reset, and a round-trip through the JSON dump. *)

module M = Wolves_obs.Metrics

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* A tiny JSON reader, just enough to round-trip the registry dump.    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Num of float
  | Str of string
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else raise (Bad_json (Printf.sprintf "expected %c at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      if !pos >= n then raise (Bad_json "unterminated string");
      (match s.[!pos] with
       | '"' -> closed := true
       | '\\' ->
         incr pos;
         if !pos >= n then raise (Bad_json "truncated escape");
         (match s.[!pos] with
          | 'n' -> Buffer.add_char buf '\n'
          | c -> Buffer.add_char buf c)
       | c -> Buffer.add_char buf c);
      incr pos
    done;
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let more = ref true in
        while !more do
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some '}' ->
            incr pos;
            more := false
          | _ -> raise (Bad_json "bad object")
        done;
        Obj (List.rev !fields)
      end
    | Some '"' -> Str (parse_string ())
    | Some 'n' ->
      pos := !pos + 4;
      Null
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr pos
      done;
      if !pos = start then raise (Bad_json "bad value");
      Num (float_of_string (String.sub s start (!pos - start)))
    | None -> raise (Bad_json "unexpected end of input")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let member key = function
  | Obj fields ->
    (match List.assoc_opt key fields with
     | Some v -> v
     | None -> Alcotest.failf "JSON member %S missing" key)
  | _ -> Alcotest.failf "JSON member %S looked up in a non-object" key

let as_num = function
  | Num f -> f
  | _ -> Alcotest.fail "expected a JSON number"

(* ------------------------------------------------------------------ *)
(* counters, gauges                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_gating () =
  M.reset ();
  M.set_enabled false;
  let c = M.counter "test.gating" in
  M.incr c;
  M.add c 10;
  check_int "disabled recording is a no-op" 0 (M.counter_value c);
  M.enabled (fun () ->
      M.incr c;
      M.add c 4);
  check_int "enabled recording counts" 5 (M.counter_value c);
  check_bool "enabled restores the flag" false (M.is_enabled ())

let test_registration_idempotent () =
  M.reset ();
  let a = M.counter "test.same" in
  let b = M.counter "test.same" in
  M.enabled (fun () -> M.incr a);
  check_int "same name, same counter" 1 (M.counter_value b);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"test.same\" is already registered as a counter")
    (fun () -> ignore (M.timer "test.same"))

let test_gauge () =
  M.reset ();
  let g = M.gauge "test.gauge" in
  check_bool "unset gauge reads None" true (M.gauge_value g = None);
  M.set g 1.5;
  check_bool "disabled set ignored" true (M.gauge_value g = None);
  M.enabled (fun () -> M.set g 2.5);
  check_bool "set gauge reads back" true (M.gauge_value g = Some 2.5)

(* ------------------------------------------------------------------ *)
(* timers                                                              *)
(* ------------------------------------------------------------------ *)

let test_timer_observe () =
  M.reset ();
  let t = M.timer "test.timer" in
  M.enabled (fun () ->
      M.observe t 1e-8;
      M.observe t 0.5;
      M.observe t (-1.0) (* clamped to 0 *));
  let st = M.timer_stats t in
  check_int "count" 3 st.M.count;
  check (Alcotest.float 1e-9) "sum" (0.5 +. 1e-8) st.M.sum;
  check (Alcotest.float 1e-9) "max" 0.5 st.M.max;
  check_int "buckets account for every observation" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 st.M.buckets);
  (* Each observation in a bucket whose bound covers it. *)
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "some bucket bound covers %g" d)
        true
        (List.exists (fun (bound, n) -> n > 0 && d <= bound) st.M.buckets))
    [ 0.0; 1e-8; 0.5 ]

let test_timer_time () =
  M.reset ();
  let t = M.timer "test.time" in
  let r = M.enabled (fun () -> M.time t (fun () -> 41 + 1)) in
  check_int "time returns the thunk's value" 42 r;
  check_int "one observation" 1 (M.timer_stats t).M.count;
  (try
     M.enabled (fun () -> M.time t (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_int "observed also on exception" 2 (M.timer_stats t).M.count

(* ------------------------------------------------------------------ *)
(* spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  M.reset ();
  M.enabled (fun () ->
      M.with_span "outer" (fun () ->
          check_bool "outer open" true (M.span_stack () = [ "outer" ]);
          M.with_span "inner" (fun () ->
              check_bool "inner nested" true
                (M.span_stack () = [ "inner"; "outer" ]));
          check_bool "inner closed" true (M.span_stack () = [ "outer" ])));
  check_bool "all spans closed" true (M.span_stack () = []);
  check_int "outer timer recorded" 1
    (M.timer_stats (M.timer "span:outer")).M.count;
  check_int "nested timer keyed by path" 1
    (M.timer_stats (M.timer "span:outer/inner")).M.count

let test_span_unwinds_on_exception () =
  M.reset ();
  (try
     M.enabled (fun () ->
         M.with_span "fails" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_bool "stack unwound" true (M.span_stack () = []);
  check_int "duration still recorded" 1
    (M.timer_stats (M.timer "span:fails")).M.count

(* ------------------------------------------------------------------ *)
(* tracer hook                                                         *)
(* ------------------------------------------------------------------ *)

let test_tracer_hooks () =
  M.reset ();
  M.set_enabled false;
  let log = ref [] in
  let tracer =
    { M.on_begin = (fun name args -> log := `B (name, args) :: !log);
      on_end = (fun name -> log := `E name :: !log);
      on_instant = (fun name args -> log := `I (name, args) :: !log) }
  in
  let t = M.timer "test.tracer.t" in
  M.with_tracer tracer (fun () ->
      M.time t ~args:(fun () -> [ ("k", "v") ]) (fun () -> ());
      M.with_span "outer" (fun () -> M.with_span "inner" (fun () -> ()));
      M.instant "tick" (fun () -> [ ("n", "1") ]));
  check_bool "tracer removed afterwards" false (M.has_tracer ());
  let expected =
    [ `B ("test.tracer.t", [ ("k", "v") ]); `E "test.tracer.t";
      `B ("outer", []); `B ("inner", []); `E "inner"; `E "outer";
      `I ("tick", [ ("n", "1") ]) ]
  in
  check_bool "events in order with args" true (List.rev !log = expected);
  (* Tracing is independent of metric recording: the flag stayed off, so
     the timer saw nothing even though the tracer saw everything. *)
  check_int "no histogram recorded while disabled" 0 (M.timer_stats t).M.count;
  M.time t (fun () -> ());
  M.instant "tick" (fun () -> []);
  check_bool "no events after uninstall" true (List.length !log = 7)

let test_tracer_args_lazy () =
  M.reset ();
  M.set_enabled false;
  let forced = ref 0 in
  let args () =
    incr forced;
    []
  in
  let t = M.timer "test.tracer.lazy" in
  M.time t ~args (fun () -> ());
  M.with_span "s" ~args (fun () -> ());
  M.instant "i" args;
  check_int "args never forced without a tracer" 0 !forced

(* ------------------------------------------------------------------ *)
(* reset, snapshot, JSON                                               *)
(* ------------------------------------------------------------------ *)

let test_reset () =
  M.reset ();
  let c = M.counter "test.reset.c" in
  let g = M.gauge "test.reset.g" in
  let t = M.timer "test.reset.t" in
  M.enabled (fun () ->
      M.incr c;
      M.set g 7.0;
      M.observe t 0.25);
  M.reset ();
  check_int "counter zeroed" 0 (M.counter_value c);
  check_bool "gauge unset" true (M.gauge_value g = None);
  check_int "timer emptied" 0 (M.timer_stats t).M.count;
  M.enabled (fun () -> M.incr c);
  check_int "registration survives reset" 1 (M.counter_value c)

(* Regression test: a reset issued while spans are open (as the bench
   driver does between sections) used to leave the stale stack entries in
   place, so later spans recorded under corrupted [outer/...] paths. *)
let test_reset_unwinds_span_stack () =
  M.reset ();
  M.enabled (fun () ->
      M.with_span "outer" (fun () ->
          M.reset ();
          check_bool "reset empties the open-span stack" true
            (M.span_stack () = []);
          M.with_span "fresh" (fun () ->
              check_bool "new spans open at the top level" true
                (M.span_stack () = [ "fresh" ]))));
  check_int "post-reset span recorded under its own path" 1
    (M.timer_stats (M.timer "span:fresh")).M.count;
  check_int "not under the pre-reset parent" 0
    (M.timer_stats (M.timer "span:outer/fresh")).M.count

let test_json_round_trip () =
  M.reset ();
  let c = M.counter "test.rt.c" in
  let g = M.gauge "test.rt.g" in
  let t = M.timer "test.rt.t" in
  M.enabled (fun () ->
      M.incr c;
      M.add c 2;
      M.set g 2.5;
      M.observe t 1e-8;
      M.observe t 1e-8;
      M.observe t 0.5);
  let doc = parse_json (M.dump_json ()) in
  check (Alcotest.float 0.0) "counter round-trips" 3.0
    (as_num (member "test.rt.c" (member "counters" doc)));
  check (Alcotest.float 0.0) "gauge round-trips" 2.5
    (as_num (member "test.rt.g" (member "gauges" doc)));
  let timer = member "test.rt.t" (member "timers" doc) in
  check (Alcotest.float 0.0) "timer count round-trips" 3.0
    (as_num (member "count" timer));
  check (Alcotest.float 1e-12) "timer sum round-trips" (0.5 +. 2e-8)
    (as_num (member "sum_s" timer));
  check (Alcotest.float 0.0) "timer max round-trips" 0.5
    (as_num (member "max_s" timer));
  let buckets =
    match member "buckets" timer with
    | Obj fields -> fields
    | _ -> Alcotest.fail "buckets is an object"
  in
  check (Alcotest.float 0.0) "bucket totals round-trip" 3.0
    (List.fold_left (fun acc (_, v) -> acc +. as_num v) 0.0 buckets);
  check_bool "only non-empty buckets emitted" true
    (List.for_all (fun (_, v) -> as_num v > 0.0) buckets)

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter gating" `Quick test_counter_gating;
          Alcotest.test_case "idempotent registration" `Quick
            test_registration_idempotent;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "timer observe" `Quick test_timer_observe;
          Alcotest.test_case "timer time" `Quick test_timer_time;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span unwinds on exception" `Quick
            test_span_unwinds_on_exception;
          Alcotest.test_case "tracer hooks" `Quick test_tracer_hooks;
          Alcotest.test_case "tracer args stay lazy" `Quick
            test_tracer_args_lazy;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "reset unwinds the span stack" `Quick
            test_reset_unwinds_span_stack;
          Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip ] ) ]
