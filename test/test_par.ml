(* The domain pool and the parallel = sequential contracts: closure rows,
   soundness verdicts and corrector outputs must be byte-identical at every
   domain count, and per-domain metric shards must merge to the totals the
   sequential run records. *)

module Par = Wolves_par.Par
module Bitset = Wolves_graph.Bitset
module Digraph = Wolves_graph.Digraph
module Reach = Wolves_graph.Reach
open Wolves_workflow
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views
module Metrics = Wolves_obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let domain_counts = [ 1; 2; 4; 8 ]

let with_domains d f =
  let saved = Par.default_domains () in
  Par.set_default_domains d;
  Fun.protect ~finally:(fun () -> Par.set_default_domains saved) f

(* ------------------------------------------------------------------ *)
(* The pool itself                                                     *)
(* ------------------------------------------------------------------ *)

let test_parallel_for_covers () =
  let n = 1000 in
  let hits = Array.make n 0 in
  (* Disjoint writes: each worker only touches its own indices. *)
  Par.parallel_for ~domains:4 n (fun i -> hits.(i) <- hits.(i) + 1);
  check_bool "every index ran exactly once" true
    (Array.for_all (fun c -> c = 1) hits);
  Par.parallel_for ~domains:4 0 (fun _ -> assert false)

let test_map_ordered () =
  let input = Array.init 257 Fun.id in
  let out = Par.map_ordered ~domains:4 (fun i -> i * i) input in
  check_bool "results placed by index" true
    (out = Array.map (fun i -> i * i) input);
  check_bool "empty input" true (Par.map_ordered ~domains:4 Fun.id [||] = [||])

let test_map_ordered_exn () =
  (* Every item fails; the exception surfaced must be the lowest-indexed
     one, whatever domain got there first. *)
  let f i = if i >= 0 then failwith (string_of_int i) else i in
  Alcotest.check_raises "lowest-index failure wins" (Failure "0") (fun () ->
      ignore (Par.map_ordered ~domains:4 f (Array.init 100 Fun.id)))

let test_nested_runs_inline () =
  (* A parallel_for from inside a pool job must not deadlock on the pool:
     nested calls run inline on the calling domain. *)
  let total = Atomic.make 0 in
  Par.parallel_for ~domains:2 8 (fun _ ->
      Par.parallel_for ~domains:2 8 (fun _ -> ignore (Atomic.fetch_and_add total 1)));
  check_int "all inner iterations ran" 64 (Atomic.get total)

let test_shutdown_restart_cycles () =
  (* shutdown joins the workers; the next parallel call must transparently
     rebuild the pool, through resizes, repeatedly. *)
  let input = Array.init 64 Fun.id in
  let expect = Array.map (fun i -> i * i) input in
  let sq domains = Par.map_ordered ~domains (fun i -> i * i) input in
  let check_arr msg got = check_bool msg true (got = expect) in
  Par.shutdown ();
  check_arr "fresh pool after shutdown" (sq 3);
  check_arr "resize up without shutdown" (sq 5);
  check_arr "resize down without shutdown" (sq 2);
  Par.shutdown ();
  Par.shutdown ();
  (* idempotent *)
  check_arr "rebuilt after double shutdown" (sq 2);
  Par.shutdown ();
  check_arr "inline (1 domain) needs no pool" (sq 1);
  check_arr "and the pool comes back once more" (sq 4);
  (* parallel_for across the same cycle *)
  Par.shutdown ();
  let hits = Array.make 128 0 in
  Par.parallel_for ~domains:3 128 (fun i -> hits.(i) <- hits.(i) + 1);
  check_bool "parallel_for covers after restart" true
    (Array.for_all (( = ) 1) hits);
  Par.shutdown ()

let test_nested_inline_single_domain () =
  (* With the process default pinned to 1 domain, nesting must stay fully
     inline — no pool is created, results are the sequential ones. *)
  let saved = Par.default_domains () in
  Par.set_default_domains 1;
  Fun.protect
    ~finally:(fun () -> Par.set_default_domains saved)
    (fun () ->
      Par.shutdown ();
      let out = Array.make 16 (-1) in
      Par.parallel_for 4 (fun i ->
          Par.parallel_for 4 (fun j -> out.((i * 4) + j) <- (i * 4) + j));
      check_bool "nested inline covers every index" true
        (out = Array.init 16 Fun.id);
      let ys = Par.map_ordered (fun x -> -x) (Array.init 8 Fun.id) in
      check_bool "inline map_ordered after shutdown" true
        (ys = Array.init 8 (fun i -> -i)))

(* ------------------------------------------------------------------ *)
(* Parallel = sequential                                               *)
(* ------------------------------------------------------------------ *)

(* Closure rows over random general graphs — cycles allowed, so this walks
   the condensation path as well as the DAG path. *)
let closure_par_eq_seq =
  QCheck2.Test.make ~name:"parallel closure = sequential closure" ~count:60
    QCheck2.Gen.(
      pair (int_range 2 40)
        (list_size (int_range 0 120) (pair (int_bound 39) (int_bound 39))))
    (fun (n, edges) ->
      let edges =
        List.filter (fun (u, v) -> u < n && v < n && u <> v) edges
      in
      let g = Digraph.of_edges ~n edges in
      let reference = with_domains 1 (fun () -> Reach.compute g) in
      List.for_all
        (fun d ->
          with_domains d (fun () -> Reach.equal reference (Reach.compute g)))
        domain_counts)

(* Same over every generator family (all DAGs, larger). *)
let test_closure_families () =
  List.iter
    (fun family ->
      let spec = Gen.generate family ~seed:7 ~size:150 in
      let g = Spec.graph spec in
      let reference = with_domains 1 (fun () -> Reach.compute g) in
      List.iter
        (fun d ->
          check_bool
            (Printf.sprintf "%s closure identical at %d domains"
               (Gen.family_name family) d)
            true
            (with_domains d (fun () -> Reach.equal reference (Reach.compute g))))
        domain_counts)
    Gen.all_families

let test_validate_families () =
  List.iter
    (fun family ->
      let spec = Gen.generate family ~seed:3 ~size:60 in
      let view =
        Views.inject_unsoundness ~seed:3 ~attempts:40
          (Views.build ~seed:3 (Views.Topological_bands 6) spec)
      in
      let reference = S.validate ~domains:1 view in
      List.iter
        (fun d ->
          check_bool
            (Printf.sprintf "%s report identical at %d domains"
               (Gen.family_name family) d)
            true
            ((S.validate ~domains:d view).S.unsound = reference.S.unsound))
        domain_counts)
    Gen.all_families

let test_correct_families () =
  let corpus =
    Views.unsound_corpus ~seed:5 ~families:Gen.all_families ~sizes:[ 20 ]
      ~per_cell:1
  in
  let shape v =
    List.map
      (fun c -> (View.composite_name v c, View.members v c))
      (View.composites v)
  in
  let parts outcomes = List.map (fun (c, o) -> (c, o.C.parts)) outcomes in
  List.iteri
    (fun i (_, view) ->
      let ref_view, ref_outcomes =
        with_domains 1 (fun () -> C.correct C.Strong view)
      in
      List.iter
        (fun d ->
          let v, outcomes = C.correct ~domains:d C.Strong view in
          check_bool
            (Printf.sprintf "corpus #%d corrected view identical at %d domains"
               i d)
            true
            (shape v = shape ref_view);
          check_bool
            (Printf.sprintf "corpus #%d outcome parts identical at %d domains"
               i d)
            true
            (parts outcomes = parts ref_outcomes))
        domain_counts)
    corpus

(* ------------------------------------------------------------------ *)
(* Metric shards                                                       *)
(* ------------------------------------------------------------------ *)

(* The registry totals a parallel validate merges back must equal the
   sequential run's, counter for counter. *)
let test_validate_metric_totals () =
  let spec = Gen.generate Gen.Layered ~seed:9 ~size:80 in
  let view =
    Views.inject_unsoundness ~seed:9 ~attempts:40
      (Views.build ~seed:9 (Views.Topological_bands 8) spec)
  in
  let soundness_counters d =
    Metrics.reset ();
    Metrics.enabled (fun () -> ignore (S.validate ~domains:d view));
    List.filter
      (fun (name, _) -> String.starts_with ~prefix:"soundness." name)
      (Metrics.snapshot ()).Metrics.counters
  in
  let reference = soundness_counters 1 in
  check_bool "sequential run recorded something" true
    (List.exists (fun (_, v) -> v > 0) reference);
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "shard totals match sequential at %d domains" d)
        true
        (soundness_counters d = reference))
    [ 2; 4; 8 ]

(* Shards from explicitly spawned domains: recordings stay private until
   the coordinator merges them, and the merge adds up. *)
let test_shard_merge_across_domains () =
  Metrics.reset ();
  let c = Metrics.counter "test.par.shard_merge" in
  Metrics.enabled @@ fun () ->
  let workers =
    Array.init 2 (fun k ->
        Domain.spawn (fun () ->
            snd
              (Metrics.with_new_shard (fun () ->
                   for _ = 1 to 50 + k do
                     Metrics.incr c
                   done))))
  in
  let shards = Array.map Domain.join workers in
  check_int "shared record untouched before merge" 0 (Metrics.counter_value c);
  Alcotest.(check (list (pair string int)))
    "shard contents readable"
    [ ("test.par.shard_merge", 50) ]
    (Metrics.shard_counters shards.(0));
  Array.iter Metrics.merge_shard shards;
  check_int "merged total" 101 (Metrics.counter_value c)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_par"
    [ ( "pool",
        [ Alcotest.test_case "parallel_for covers" `Quick
            test_parallel_for_covers;
          Alcotest.test_case "map_ordered order" `Quick test_map_ordered;
          Alcotest.test_case "map_ordered exceptions" `Quick
            test_map_ordered_exn;
          Alcotest.test_case "nested calls run inline" `Quick
            test_nested_runs_inline;
          Alcotest.test_case "shutdown/restart cycles" `Quick
            test_shutdown_restart_cycles;
          Alcotest.test_case "nested inline under 1 domain" `Quick
            test_nested_inline_single_domain ] );
      ( "determinism",
        [ qt closure_par_eq_seq;
          Alcotest.test_case "closure over families" `Slow
            test_closure_families;
          Alcotest.test_case "validate over families" `Slow
            test_validate_families;
          Alcotest.test_case "correct over corpus" `Slow test_correct_families ] );
      ( "shards",
        [ Alcotest.test_case "validate metric totals" `Quick
            test_validate_metric_totals;
          Alcotest.test_case "merge across domains" `Quick
            test_shard_merge_across_domains ] ) ]
