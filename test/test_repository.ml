(* Tests for the repository: synthesis, audit, batch correction, MoML
   directory persistence, and workload generator/view-policy invariants. *)

open Wolves_workflow
module R = Wolves_repository.Repository
module S = Wolves_core.Soundness
module C = Wolves_core.Corrector
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views
module Prng = Wolves_workload.Prng
module Algo = Wolves_graph.Algo

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let seq rng = List.init 50 (fun _ -> Prng.int rng 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Prng.create 43 in
  check_bool "different seed, different stream" true (seq (Prng.create 42) <> seq c)

let test_prng_ranges () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let x = Prng.int rng 17 in
    check_bool "int in range" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 1_000 do
    let f = Prng.float rng 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_shuffle () =
  let rng = Prng.create 1 in
  let original = List.init 100 Fun.id in
  let shuffled = Prng.shuffle rng original in
  check_bool "permutation" true (List.sort compare shuffled = original);
  check_bool "actually moved" true (shuffled <> original)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_generators_shape () =
  List.iter
    (fun family ->
      List.iter
        (fun size ->
          let spec = Gen.generate family ~seed:11 ~size in
          check_int
            (Printf.sprintf "%s size" (Gen.family_name family))
            size (Spec.n_tasks spec);
          check_bool "acyclic" true (Algo.is_dag (Spec.graph spec));
          (* no isolated tasks *)
          List.iter
            (fun t ->
              check_bool "task connected" true
                (Spec.producers spec t <> [] || Spec.consumers spec t <> []))
            (Spec.tasks spec))
        [ 2; 5; 10; 30; 100 ])
    Gen.all_families

let test_generator_determinism () =
  List.iter
    (fun family ->
      let a = Gen.generate family ~seed:5 ~size:25 in
      let b = Gen.generate family ~seed:5 ~size:25 in
      check_bool "same seed, same graph" true
        (Wolves_graph.Digraph.equal (Spec.graph a) (Spec.graph b)))
    Gen.all_families

let test_layered_direct () =
  let spec = Gen.layered ~seed:3 ~layers:5 ~width:4 ~fanout:1.5 in
  check_int "20 tasks" 20 (Spec.n_tasks spec);
  check_bool "acyclic" true (Algo.is_dag (Spec.graph spec))

(* ------------------------------------------------------------------ *)
(* View policies                                                       *)
(* ------------------------------------------------------------------ *)

let test_view_policies_are_partitions () =
  let spec = Gen.generate Gen.Layered ~seed:21 ~size:40 in
  List.iter
    (fun policy ->
      let view = Views.build ~seed:9 policy spec in
      (* of_partition_exn already validates; check group sizes are sane. *)
      check_int
        (Printf.sprintf "%s covers all tasks" (Views.policy_name policy))
        40
        (List.fold_left
           (fun acc c -> acc + List.length (View.members view c))
           0 (View.composites view)))
    [ Views.Topological_bands 5; Views.Connected_groups 5; Views.Random_partition 5 ]

let test_inject_unsoundness () =
  let spec = Gen.generate Gen.Pipeline ~seed:2 ~size:30 in
  let view = Views.build ~seed:2 (Views.Connected_groups 4) spec in
  let perturbed = Views.inject_unsoundness ~seed:3 ~attempts:200 view in
  check_bool "perturbed view unsound" false (S.is_sound perturbed)

let test_unsound_corpus () =
  let corpus =
    Views.unsound_corpus ~seed:4 ~families:[ Gen.Layered; Gen.Pipeline ]
      ~sizes:[ 20; 30 ] ~per_cell:3
  in
  check_int "corpus size" 12 (List.length corpus);
  let unsound = List.filter (fun (_, v) -> not (S.is_sound v)) corpus in
  check_bool "most entries unsound" true (List.length unsound >= 8)

(* ------------------------------------------------------------------ *)
(* Repository                                                          *)
(* ------------------------------------------------------------------ *)

let test_repo_add_find () =
  let repo = R.create () in
  let spec, view = Examples.figure1 () in
  let id = R.add repo ~origin:"manual" spec view in
  check_int "size" 1 (R.size repo);
  check_bool "find" true (R.find repo id <> None);
  check_bool "missing" true (R.find repo "nope" = None);
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Repository.add: duplicate id \"wf0000\"") (fun () ->
      ignore (R.add repo ~id:"wf0000" ~origin:"manual" spec view))

let test_repo_audit_and_correct () =
  let repo = R.synthesize ~seed:99 ~per_cell:2 ~sizes:[ 16; 24 ] () in
  (* 4 families x 2 sizes x 3 policies x 2 = 48 entries *)
  check_int "synthesized size" 48 (R.size repo);
  let audit = R.audit repo in
  check_int "audit covers all" 48 audit.R.total;
  check_bool "survey finds unsound views (the paper's observation)" true
    (audit.R.unsound_views > 0);
  check_bool "origin breakdown sums to total" true
    (List.fold_left (fun acc (_, n, _) -> acc + n) 0 audit.R.by_origin = 48);
  let corrected_repo, repaired = R.correct_all C.Strong repo in
  check_int "repaired = unsound count" audit.R.unsound_views repaired;
  let audit' = R.audit corrected_repo in
  check_int "everything sound after correction" 0 audit'.R.unsound_views

let test_repo_persistence () =
  let repo = R.synthesize ~seed:7 ~per_cell:1 ~sizes:[ 12 ] () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "wolves_repo_test" in
  (match R.save_dir dir repo with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save_dir: %a" R.pp_io_error e);
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        Alcotest.failf "temporary file left behind: %s" f)
    (Sys.readdir dir);
  (match R.load_dir dir with
   | Error e -> Alcotest.failf "load_dir: %a" R.pp_io_error e
   | Ok repo' ->
     check_int "same entry count" (R.size repo) (R.size repo');
     List.iter2
       (fun a b ->
         check_int "same composites" (View.n_composites a.R.view)
           (View.n_composites b.R.view);
         check_int "same tasks" (Spec.n_tasks a.R.spec) (Spec.n_tasks b.R.spec))
       (R.entries repo) (R.entries repo'));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  match R.load_dir "/nonexistent-dir" with
  | Error (R.Io_error _) -> ()
  | Error (R.Entry_error _) ->
    Alcotest.fail "expected a filesystem error, got an entry error"
  | Ok _ -> Alcotest.fail "expected an error for a missing directory"


let test_repo_id_validation () =
  let repo = R.create () in
  let spec, view = Examples.figure1 () in
  (* Ids become file basenames: anything that could navigate outside the
     save_dir target directory must be rejected at insertion. *)
  List.iter
    (fun bad ->
      match R.add repo ~id:bad ~origin:"manual" spec view with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "id %S accepted" bad)
    [ ""; "."; ".."; "a/b"; "../escape"; "a\\b"; "evil/../../etc"; "nul\000id" ];
  check_int "nothing was inserted" 0 (R.size repo);
  (* Benign ids still work, including dots inside the name. *)
  List.iter
    (fun good -> ignore (R.add repo ~id:good ~origin:"manual" spec view))
    [ "plain"; "with-dash_и_unicode"; "v1.2.3"; ".hidden-ish" ]

let test_repo_save_dir_sweeps_stale_tmp () =
  let repo = R.synthesize ~seed:8 ~per_cell:1 ~sizes:[ 8 ] ~policies:[ Views.Random_partition 3 ] () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "wolves_repo_tmp_sweep" in
  Sys.mkdir dir 0o755;
  let stale = Filename.concat dir "wf0000.moml.999-1.tmp" in
  Out_channel.with_open_text stale (fun oc ->
      Out_channel.output_string oc "half a workflow");
  (match R.save_dir dir repo with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save_dir: %a" R.pp_io_error e);
  check_bool "stale temporary swept" false (Sys.file_exists stale);
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        Alcotest.failf "temporary left behind: %s" f)
    (Sys.readdir dir);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_repo_lenient_load () =
  let repo = R.synthesize ~seed:9 ~per_cell:1 ~sizes:[ 8 ] ~policies:[ Views.Random_partition 3 ] () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "wolves_repo_lenient" in
  (match R.save_dir dir repo with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save_dir: %a" R.pp_io_error e);
  (* Corrupt one entry and add one unparsable stray. *)
  let victim =
    Filename.concat dir
      (Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".moml")
      |> List.sort compare |> List.hd)
  in
  Out_channel.with_open_text victim (fun oc ->
      Out_channel.output_string oc "<moml but torn");
  Out_channel.with_open_text (Filename.concat dir "stray.moml") (fun oc ->
      Out_channel.output_string oc "not xml at all");
  (match R.load_dir dir with
   | Ok _ -> Alcotest.fail "strict load must fail on a corrupt entry"
   | Error _ -> ());
  (match R.load_dir_lenient dir with
   | Error e -> Alcotest.failf "lenient load: %a" R.pp_io_error e
   | Ok (repo', failed) ->
     check_int "good entries loaded" (R.size repo - 1) (R.size repo');
     check_int "two failures collected" 2 (List.length failed);
     List.iter
       (fun (file, _) ->
         check_bool "failure names a real file" true
           (Sys.file_exists (Filename.concat dir file)))
       failed);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let test_repo_store_roundtrip () =
  let repo = R.synthesize ~seed:12 ~per_cell:1 ~sizes:[ 10 ] () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "wolves_repo_store" in
  rm_rf dir;
  (match R.save_store dir repo with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save_store: %a" R.pp_io_error e);
  (match R.load_store dir with
   | Error e -> Alcotest.failf "load_store: %a" R.pp_io_error e
   | Ok repo' ->
     check_int "same entry count" (R.size repo) (R.size repo');
     List.iter
       (fun e ->
         match R.find repo' e.R.id with
         | None -> Alcotest.failf "entry %s lost" e.R.id
         | Some e' ->
           check_int "same tasks" (Spec.n_tasks e.R.spec) (Spec.n_tasks e'.R.spec);
           check_int "same composites" (View.n_composites e.R.view)
             (View.n_composites e'.R.view))
       (R.entries repo));
  (* Re-saving supersedes: same ids, one logical copy. *)
  (match R.save_store dir repo with
   | Ok () -> ()
   | Error e -> Alcotest.failf "re-save: %a" R.pp_io_error e);
  (match R.load_store dir with
   | Error e -> Alcotest.failf "re-load: %a" R.pp_io_error e
   | Ok repo' -> check_int "still one copy per id" (R.size repo) (R.size repo'));
  rm_rf dir

let test_repo_update () =
  let repo = R.create () in
  let spec, view = Examples.figure1 () in
  let id = R.add repo ~origin:"manual" spec view in
  (* Evolve: drop the display task. *)
  let new_spec =
    Spec.of_tasks_exn ~name:"phylogenomic-inference"
      (List.filter (fun n -> n <> "12:Display Tree")
         (List.map (Spec.task_name spec) (Spec.tasks spec)))
      (List.filter_map
         (fun (u, v) ->
           let nu = Spec.task_name spec u and nv = Spec.task_name spec v in
           if nv = "12:Display Tree" then None else Some (nu, nv))
         (Wolves_graph.Digraph.edges (Spec.graph spec)))
  in
  (match R.update repo ~id new_spec with
   | Error msg -> Alcotest.fail msg
   | Ok impact ->
     check_int "view migrated" 7
       (View.n_composites impact.Wolves_core.Evolution.new_view));
  (match R.find repo id with
   | Some entry ->
     check_int "entry replaced" 11 (Spec.n_tasks entry.R.spec);
     check_bool "origin marked" true
       (String.length entry.R.origin > String.length "manual")
   | None -> Alcotest.fail "entry vanished");
  match R.update repo ~id:"ghost" new_spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown id accepted"

let () =
  Alcotest.run "wolves_repository"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle ] );
      ( "generators",
        [ Alcotest.test_case "families produce valid DAGs" `Quick
            test_generators_shape;
          Alcotest.test_case "deterministic in seed" `Quick
            test_generator_determinism;
          Alcotest.test_case "layered direct" `Quick test_layered_direct ] );
      ( "views",
        [ Alcotest.test_case "policies are partitions" `Quick
            test_view_policies_are_partitions;
          Alcotest.test_case "unsoundness injection" `Quick test_inject_unsoundness;
          Alcotest.test_case "unsound corpus" `Quick test_unsound_corpus ] );
      ( "repository",
        [ Alcotest.test_case "add and find" `Quick test_repo_add_find;
          Alcotest.test_case "audit and batch correction" `Quick
            test_repo_audit_and_correct;
          Alcotest.test_case "MoML directory persistence" `Quick
            test_repo_persistence;
          Alcotest.test_case "id validation" `Quick test_repo_id_validation;
          Alcotest.test_case "save_dir sweeps stale temporaries" `Quick
            test_repo_save_dir_sweeps_stale_tmp;
          Alcotest.test_case "lenient directory load" `Quick
            test_repo_lenient_load;
          Alcotest.test_case "store round-trip" `Quick test_repo_store_roundtrip;
          Alcotest.test_case "versioned update" `Quick test_repo_update ] ) ]
