(* Tests for the provenance query server: protocol framing, the chaos
   fault-injection property (replies byte-identical to direct library calls
   under every injected network pathology), the socket lifecycle (overload
   shedding, slow-loris, graceful drain), and the CLI binary's serve/drain
   and exit-code behaviour (satellites: resume warning on stderr, non-zero
   exit when an artifact write fails, SIGTERM drain exits 0). *)

open Wolves_workflow
module Net_io = Wolves_server.Net_io
module Protocol = Wolves_server.Protocol
module Service = Wolves_server.Service
module Server = Wolves_server.Server
module Client = Wolves_server.Client
module C = Wolves_core.Corrector
module Olog = Wolves_obs.Log
module Prom = Wolves_obs.Prom
module Ring = Wolves_trace.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let reply_t =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (String.escaped (Protocol.render r)))
    ( = )

let request_t =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Protocol.kind r))
    ( = )

(* ------------------------------------------------------------------ *)
(* Fixture corpus                                                      *)
(* ------------------------------------------------------------------ *)

(* A 21-task chain whose composite omits the middle task: unsound with 20
   members, which is past the optimal corrector's exact-search bound — the
   isolation tests drive the resulting Invalid_argument through the server. *)
let big_view () =
  let names = List.init 21 (fun i -> Printf.sprintf "t%02d" i) in
  let deps =
    List.init 20 (fun i ->
        (Printf.sprintf "t%02d" i, Printf.sprintf "t%02d" (i + 1)))
  in
  let spec = Spec.of_tasks_exn ~name:"big-chain" names deps in
  let members = List.filter (fun n -> n <> "t10") names in
  View.make_exn spec [ ("C", members); ("solo", [ "t10" ]) ]

let service =
  lazy
    (Service.load
       [ ("fig1", snd (Examples.figure1 ()));
         ("fig3", snd (Examples.figure3 ()));
         ("big", big_view ()) ])

let server () = Server.create (Lazy.force service)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let check_parse line expected =
  match Protocol.parse line with
  | Ok r -> Alcotest.check request_t line expected r
  | Error (code, msg) ->
      Alcotest.failf "%s: unexpected parse error %s %s" line code msg

let check_parse_err line code =
  match Protocol.parse line with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" line
  | Error (c, _) -> check_string line code c

let test_parse () =
  check_parse "PING" Protocol.Ping;
  check_parse "ping" Protocol.Ping;
  check_parse "  LiSt  " Protocol.List_ids;
  check_parse "STATS" Protocol.Stats;
  check_parse "HEALTH" Protocol.Health;
  check_parse "METRICS" Protocol.Metrics;
  check_parse "  metrics " Protocol.Metrics;
  check_parse "TRACE" Protocol.Trace;
  check_parse "trace" Protocol.Trace;
  check_parse "QUIT" Protocol.Quit;
  check_parse "VALIDATE fig1" (Protocol.Validate "fig1");
  check_parse " validate   fig1 " (Protocol.Validate "fig1");
  check_parse "LINT a" (Protocol.Lint "a");
  check_parse "ANALYZE a" (Protocol.Analyze "a");
  check_parse "CORRECT x" (Protocol.Correct ("x", None));
  check_parse "CORRECT x optimal"
    (Protocol.Correct ("x", Some (Protocol.Criterion C.Optimal)));
  check_parse "CORRECT x WEAK"
    (Protocol.Correct ("x", Some (Protocol.Criterion C.Weak)));
  check_parse "CORRECT x DEADLINE 250"
    (Protocol.Correct ("x", Some (Protocol.Deadline_ms 250.)));
  check_parse "CORRECT x deadline 0"
    (Protocol.Correct ("x", Some (Protocol.Deadline_ms 0.)));
  check_parse "QUERY id ancestors('a') - {'b'}"
    (Protocol.Query ("id", "ancestors('a') - {'b'}"));
  check_parse_err "" "bad-request";
  check_parse_err "   " "bad-request";
  check_parse_err "PING extra" "bad-request";
  check_parse_err "METRICS now" "bad-request";
  check_parse_err "TRACE x" "bad-request";
  check_parse_err "VALIDATE" "bad-request";
  check_parse_err "VALIDATE a b" "bad-request";
  check_parse_err "CORRECT x bogus" "bad-request";
  check_parse_err "CORRECT x DEADLINE -1" "bad-request";
  check_parse_err "CORRECT x DEADLINE nan" "bad-request";
  check_parse_err "QUERY id" "bad-request";
  check_parse_err "FROB" "unknown-command";
  check_parse_err "\xffgarbage\x01 x" "unknown-command"

let test_render () =
  check_string "ok framing" "OK 2\na\nb\n"
    (Protocol.render (Protocol.Ok_lines [ "a"; "b" ]));
  check_string "empty ok" "OK 0\n" (Protocol.render (Protocol.Ok_lines []));
  check_string "newline folding" "OK 1\nx y\n"
    (Protocol.render (Protocol.Ok_lines [ "x\ny" ]));
  check_string "err line" "ERR code a message\n"
    (Protocol.render (Protocol.Err ("code", "a message")));
  check_string "err sanitized" "ERR c a?b c\n"
    (Protocol.render (Protocol.Err ("c", "a\x01b\nc")));
  check_string "overloaded" "OVERLOADED 100\n"
    (Protocol.render (Protocol.Overloaded 100));
  let long = String.make 300 'z' in
  let rendered = Protocol.render (Protocol.Err ("c", long)) in
  check_bool "err truncated" true (String.length rendered < 250)

let test_parse_reply_stream () =
  let replies =
    [ Protocol.Ok_lines [ "pong" ];
      Protocol.Err ("unknown-id", "no workflow x loaded (try LIST)");
      Protocol.Overloaded 50;
      Protocol.Ok_lines [];
      Protocol.Ok_lines [ "a"; "b"; "c" ] ]
  in
  let stream = String.concat "" (List.map Protocol.render replies) in
  (match Protocol.parse_reply_stream stream with
  | Ok (got, leftover) ->
      Alcotest.(check (list reply_t)) "round trip" replies got;
      check_string "no leftover" "" leftover
  | Error e -> Alcotest.failf "round trip: %s" e);
  (* a frame cut mid-payload leaves the whole frame as the tail *)
  let cut = String.sub stream 0 (String.length stream - 3) in
  (match Protocol.parse_reply_stream cut with
  | Ok (got, leftover) ->
      check_int "complete frames before the cut" 4 (List.length got);
      check_bool "tail starts at the cut frame" true
        (String.length leftover > 0 && String.sub leftover 0 2 = "OK")
  | Error e -> Alcotest.failf "cut stream: %s" e);
  match Protocol.parse_reply_stream "NONSENSE line\n" with
  | Ok _ -> Alcotest.fail "protocol violation not detected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Service                                                             *)
(* ------------------------------------------------------------------ *)

let test_service_load () =
  let t = Lazy.force service in
  check_int "corpus size" 3 (Service.size t);
  Alcotest.(check (list string)) "sorted ids" [ "big"; "fig1"; "fig3" ]
    (Service.ids t);
  check_bool "find hit" true (Service.find t "fig1" <> None);
  check_bool "find miss" true (Service.find t "nope" = None);
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Service.load: duplicate id x") (fun () ->
      ignore
        (Service.load
           [ ("x", snd (Examples.figure1 ())); ("x", snd (Examples.figure1 ())) ]));
  Alcotest.check_raises "empty id" (Invalid_argument "Service.load: empty id")
    (fun () -> ignore (Service.load [ ("", snd (Examples.figure1 ())) ]))

let test_service_handle () =
  let t = Lazy.force service in
  Alcotest.check reply_t "ping" (Protocol.Ok_lines [ "pong" ])
    (Service.handle t Protocol.Ping);
  (match Service.handle t (Protocol.Validate "fig3") with
  | Protocol.Ok_lines lines ->
      check_bool "fig3 unsound" true (List.mem "sound false" lines)
  | r -> Alcotest.failf "validate fig3: %s" (Protocol.render r));
  (match Service.handle t (Protocol.Validate "nope") with
  | Protocol.Err ("unknown-id", _) -> ()
  | r -> Alcotest.failf "unknown id: %s" (Protocol.render r));
  (* STATS/HEALTH/METRICS/TRACE are owned by the server, not the library *)
  (match Service.handle t Protocol.Stats with
  | Protocol.Err ("bad-request", _) -> ()
  | r -> Alcotest.failf "stats via service: %s" (Protocol.render r));
  (match Service.handle t Protocol.Metrics with
  | Protocol.Err ("bad-request", _) -> ()
  | r -> Alcotest.failf "metrics via service: %s" (Protocol.render r));
  (match Service.handle t Protocol.Trace with
  | Protocol.Err ("bad-request", _) -> ()
  | r -> Alcotest.failf "trace via service: %s" (Protocol.render r));
  (* isolation: the oversized-optimal Invalid_argument becomes a typed error *)
  (match Service.handle t (Protocol.Correct ("big", Some (Protocol.Criterion C.Optimal))) with
  | Protocol.Err ("bad-request", _) -> ()
  | r -> Alcotest.failf "oversized optimal: %s" (Protocol.render r));
  (* a pre-charged deadline degrades to the weak floor deterministically *)
  match Service.handle ~spent_s:999. t
          (Protocol.Correct ("fig3", Some (Protocol.Deadline_ms 60000.)))
  with
  | Protocol.Ok_lines lines ->
      check_bool "queue-wait pre-charge degrades to weak" true
        (List.exists
           (fun l ->
             String.length l >= 5 && String.sub l 0 5 = "split"
             && String.length l > 10
             &&
             let words = String.split_on_char ' ' l in
             List.exists (( = ) "weak") words)
           lines)
  | r -> Alcotest.failf "precharged correct: %s" (Protocol.render r)

(* ------------------------------------------------------------------ *)
(* Chaos: serve_connection over fault-injecting in-memory connections   *)
(* ------------------------------------------------------------------ *)

(* The canonical session: one request of every library-served kind, errors
   included, QUIT last. Correction deadlines are 0 or generous so every
   tier decision is deterministic on both sides of the comparison. *)
let session =
  [ "PING";
    "LIST";
    "VALIDATE fig1";
    "VALIDATE nosuch";
    "CORRECT fig3 weak";
    "CORRECT fig1 DEADLINE 0";
    "CORRECT fig3 DEADLINE 60000";
    "QUERY fig1 ancestors('12:Display Tree')";
    "LINT fig3";
    "ANALYZE fig1";
    "CORRECT fig3 bogus";
    "FROB nonsense";
    "";
    "QUIT" ]

let session_input = String.concat "" (List.map (fun l -> l ^ "\n") session)

(* Expected wire bytes for each session line: exactly what the server's own
   dispatch produces for a direct call — Service.handle and serve_connection
   share it, which is what makes byte-identity meaningful. *)
let reply_for srv line =
  if String.trim line = "" then None
  else
    Some
      (Protocol.render
         (match Protocol.parse line with
         | Error (code, msg) -> Protocol.Err (code, msg)
         | Ok req -> Server.handle_request srv req))

(* Replies owed for the first [n] input bytes: one per request line whose
   terminator lies within the prefix. *)
let expected_for_prefix srv n =
  let b = Buffer.create 1024 in
  let pos = ref 0 in
  List.iter
    (fun line ->
      let finish = !pos + String.length line + 1 in
      if finish <= n then
        Option.iter (Buffer.add_string b) (reply_for srv line);
      pos := finish)
    session;
  Buffer.contents b

let run_session srv ?fault input =
  let out = Buffer.create 4096 in
  let conn = Net_io.of_string input out in
  let conn, inj =
    match fault with
    | None -> (conn, { Net_io.received = 0; sent = 0; fired = false })
    | Some f -> Net_io.faulty f conn
  in
  Server.serve_connection srv conn;
  (Buffer.contents out, inj)

let test_chaos_clean_and_short () =
  let srv = server () in
  let expected = expected_for_prefix srv (String.length session_input) in
  check_bool "expected output non-trivial" true (String.length expected > 200);
  let clean, _ = run_session srv session_input in
  check_string "no fault: byte-identical to direct calls" expected clean;
  (* short reads and short writes change chunking, never bytes *)
  let short_r, inj_r = run_session srv ~fault:Net_io.Short_reads session_input in
  check_string "short reads: byte-identical" expected short_r;
  check_bool "short-read fault fired" true inj_r.Net_io.fired;
  let short_w, inj_w = run_session srv ~fault:Net_io.Short_writes session_input in
  check_string "short writes: byte-identical" expected short_w;
  check_bool "short-write fault fired" true inj_w.Net_io.fired;
  (* CRLF clients get the same bytes back *)
  let crlf = String.concat "" (List.map (fun l -> l ^ "\r\n") session) in
  let crlf_out, _ = run_session srv crlf in
  check_string "CRLF session: byte-identical" expected crlf_out

(* Sweep a byte-offset fault across the whole session: at EVERY cut point
   the server must answer exactly the requests whose bytes arrived whole. *)
let test_chaos_disconnect_sweep () =
  let srv = server () in
  let len = String.length session_input in
  let n = ref 0 in
  while !n <= len do
    let out, _ =
      run_session srv ~fault:(Net_io.Disconnect_after_recv !n) session_input
    in
    check_string
      (Printf.sprintf "disconnect after %d bytes" !n)
      (expected_for_prefix srv !n)
      out;
    n := !n + 3
  done;
  let out, _ =
    run_session srv ~fault:(Net_io.Disconnect_after_recv len) session_input
  in
  check_string "disconnect at end = clean run"
    (expected_for_prefix srv len)
    out

let timeout_line =
  Protocol.render (Protocol.Err ("timeout", "no complete request within deadline"))

let test_chaos_stall_sweep () =
  let srv = server () in
  let len = String.length session_input in
  let n = ref 0 in
  while !n < len do
    let out, inj =
      run_session srv ~fault:(Net_io.Stall_after_recv !n) session_input
    in
    check_bool (Printf.sprintf "stall at %d fired" !n) true inj.Net_io.fired;
    check_string
      (Printf.sprintf "stall after %d bytes" !n)
      (expected_for_prefix srv !n ^ timeout_line)
      out;
    n := !n + 3
  done

let test_chaos_send_error_sweep () =
  let srv = server () in
  let expected = expected_for_prefix srv (String.length session_input) in
  let total = String.length expected in
  let n = ref 0 in
  while !n < total do
    let out, inj =
      run_session srv ~fault:(Net_io.Error_after_send !n) session_input
    in
    check_bool (Printf.sprintf "send fault at %d fired" !n) true inj.Net_io.fired;
    (* the peer saw a clean prefix of the true reply stream, nothing else *)
    check_string
      (Printf.sprintf "peer reset after %d reply bytes" !n)
      (String.sub expected 0 !n)
      out;
    n := !n + 13
  done;
  let out, _ =
    run_session srv ~fault:(Net_io.Error_after_send total) session_input
  in
  check_string "send fault past the end never fires" expected out

let test_chaos_garbage_sweep () =
  let srv = server () in
  let len = String.length session_input in
  let n = ref 0 in
  while !n <= len do
    let seed = (!n * 7) + 1 in
    let out, _ =
      run_session srv ~fault:(Net_io.Garbage_after_recv (!n, seed)) session_input
    in
    let clean_prefix = expected_for_prefix srv !n in
    (* requests that arrived whole before the corruption are answered
       exactly; whatever follows is still well-formed protocol *)
    check_bool
      (Printf.sprintf "garbage from %d: clean replies are a prefix" !n)
      true
      (String.length out >= String.length clean_prefix
      && String.sub out 0 (String.length clean_prefix) = clean_prefix);
    (match Protocol.parse_reply_stream out with
    | Ok (_, leftover) ->
        check_string
          (Printf.sprintf "garbage from %d: no torn frame" !n)
          "" leftover
    | Error e -> Alcotest.failf "garbage from %d: ill-formed output: %s" !n e);
    n := !n + 5
  done

(* Random scripts x random faults: never crashes, output always well-formed,
   and chunking faults (which drop or corrupt nothing) stay byte-identical. *)
let chaos_random =
  let pool =
    [| "PING"; "LIST"; "VALIDATE fig1"; "VALIDATE fig3"; "VALIDATE nosuch";
       "CORRECT fig3 weak"; "CORRECT fig1 DEADLINE 0"; "LINT fig1";
       "ANALYZE fig3"; "QUERY fig1 ancestors('12:Display Tree')";
       "QUERY fig3 descendants"; "CORRECT"; "FROB x"; "" |]
  in
  let gen =
    QCheck2.Gen.(
      let script =
        list_size (int_range 0 8) (int_range 0 (Array.length pool - 1))
      in
      let fault =
        oneof
          [ return None;
            return (Some Net_io.Short_reads);
            return (Some Net_io.Short_writes);
            map (fun n -> Some (Net_io.Disconnect_after_recv n)) (int_range 0 400);
            map (fun n -> Some (Net_io.Stall_after_recv n)) (int_range 0 400);
            map (fun n -> Some (Net_io.Error_after_send n)) (int_range 0 2000);
            map
              (fun (n, s) -> Some (Net_io.Garbage_after_recv (n, s)))
              (pair (int_range 0 400) (int_range 0 1000)) ]
      in
      pair script fault)
  in
  QCheck2.Test.make ~name:"chaos: random scripts x faults stay well-formed"
    ~count:60 gen (fun (script, fault) ->
      let srv = server () in
      let lines = List.map (fun i -> pool.(i)) script @ [ "QUIT" ] in
      let input = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
      let out, _ = run_session srv ?fault input in
      (match Protocol.parse_reply_stream out with
      | Ok _ -> ()
      | Error e -> QCheck2.Test.fail_reportf "ill-formed output: %s" e);
      match fault with
      | None | Some Net_io.Short_reads | Some Net_io.Short_writes ->
          let expected =
            String.concat ""
              (List.filter_map
                 (fun l ->
                   if String.trim l = "" then None
                   else
                     Some
                       (Protocol.render
                          (match Protocol.parse l with
                          | Error (c, m) -> Protocol.Err (c, m)
                          | Ok r -> Server.handle_request srv r)))
                 lines)
          in
          if out <> expected then
            QCheck2.Test.fail_reportf
              "chunking fault changed bytes:\nexpected %S\ngot      %S" expected
              out;
          true
      | Some _ -> true)

(* Isolation at the connection level: a raising request costs one typed ERR
   and the same connection keeps serving. *)
let test_chaos_isolation () =
  let srv = server () in
  let out, _ =
    run_session srv "CORRECT big optimal\nPING\nQUIT\n"
  in
  match Protocol.parse_reply_stream out with
  | Ok ([ Protocol.Err ("bad-request", _); Protocol.Ok_lines [ "pong" ];
          Protocol.Ok_lines [ "bye" ] ], "") -> ()
  | Ok (rs, tail) ->
      Alcotest.failf "isolation: got %d replies, tail %S" (List.length rs) tail
  | Error e -> Alcotest.failf "isolation: %s" e

let test_chaos_too_long () =
  let config = { Server.default_config with max_request_bytes = 32 } in
  let srv = Server.create ~config (Lazy.force service) in
  let input = "PING\nVALIDATE " ^ String.make 100 'x' ^ "\nPING\n" in
  let out, _ = run_session srv input in
  match Protocol.parse_reply_stream out with
  | Ok ([ Protocol.Ok_lines [ "pong" ]; Protocol.Err ("too-large", _) ], "") ->
      ()
  | Ok (rs, _) ->
      Alcotest.failf "too-long: got %d replies: %S" (List.length rs) out
  | Error e -> Alcotest.failf "too-long: %s" e

(* ------------------------------------------------------------------ *)
(* Chaos x observability: the access log and the trace ring             *)
(* ------------------------------------------------------------------ *)

(* Pull one field's raw value out of a rendered JSONL access-log record.
   Good enough for the fixed field names the server emits (none of whose
   string values contain escapes). *)
let field_value line key =
  let needle = Printf.sprintf "\"%s\":" key in
  let n = String.length line and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = needle then
      let j = i + m in
      if j < n && line.[j] = '"' then
        match String.index_from_opt line (j + 1) '"' with
        | Some k -> Some (String.sub line (j + 1) (k - j - 1))
        | None -> None
      else begin
        let k = ref j in
        while !k < n && line.[!k] <> ',' && line.[!k] <> '}' do incr k done;
        Some (String.sub line j (!k - j))
      end
    else go (i + 1)
  in
  go 0

let access_records buf =
  Buffer.contents buf |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.filter (fun l -> field_value l "event" = Some "request")

(* The tentpole's exactly-once property: under every fault schedule, each
   request the server completed appears exactly once in the access log, in
   order, with an outcome matching its wire reply. The wire may trail the
   log by at most one record (a reply whose send the fault ate), and a
   connection-level timeout error is wire-only by design (no request line
   was ever read). *)
let test_chaos_access_log_exactly_once () =
  let schedules =
    [ ("clean", None);
      ("short reads", Some Net_io.Short_reads);
      ("short writes", Some Net_io.Short_writes);
      ("disconnect", Some (Net_io.Disconnect_after_recv 40));
      ("stall", Some (Net_io.Stall_after_recv 25));
      ("send error", Some (Net_io.Error_after_send 30));
      ("garbage", Some (Net_io.Garbage_after_recv (50, 7))) ]
  in
  List.iter
    (fun (name, fault) ->
      let srv = server () in
      let buf = Buffer.create 4096 in
      let out, _ =
        Olog.with_sink (Olog.buffer_sink buf) (fun () ->
            run_session srv ?fault session_input)
      in
      let frames =
        match Protocol.parse_reply_stream out with
        | Ok (frames, _torn_tail) -> frames
        | Error e -> Alcotest.failf "%s: ill-formed wire output: %s" name e
      in
      (* the stall schedule's trailing timeout error is connection-level *)
      let frames =
        List.filter
          (function Protocol.Err ("timeout", _) -> false | _ -> true)
          frames
      in
      let records = access_records buf in
      List.iter
        (fun l ->
          check_bool
            (Printf.sprintf "%s: record is one JSON object" name)
            true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        records;
      let n_frames = List.length frames and n_logs = List.length records in
      check_bool
        (Printf.sprintf "%s: every wire reply is logged (%d frames, %d logs)"
           name n_frames n_logs)
        true
        (n_logs >= n_frames && n_logs <= n_frames + 1);
      (* outcomes match the wire, frame by frame, in order *)
      List.iteri
        (fun i frame ->
          let record = List.nth records i in
          let want_outcome, detail_key, detail_value =
            match frame with
            | Protocol.Ok_lines lines ->
                ("ok", "payload_lines", string_of_int (List.length lines))
            | Protocol.Err (code, _) -> ("err", "code", code)
            | Protocol.Overloaded ms -> ("overloaded", "retry_after_ms", string_of_int ms)
          in
          check_string
            (Printf.sprintf "%s: reply %d outcome" name i)
            want_outcome
            (Option.value ~default:"<missing>" (field_value record "outcome"));
          check_string
            (Printf.sprintf "%s: reply %d %s" name i detail_key)
            detail_value
            (Option.value ~default:"<missing>" (field_value record detail_key)))
        frames;
      (* request ids are unique and strictly increasing *)
      let ids =
        List.map
          (fun r ->
            match field_value r "req_id" with
            | Some s -> int_of_string s
            | None -> Alcotest.failf "%s: record without req_id: %s" name r)
          records
      in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      check_bool (Printf.sprintf "%s: req_ids strictly increasing" name) true
        (ascending ids))
    schedules

(* Sampled requests must commit their span events contiguously, so the ring
   always reconstructs into balanced per-request trees — even though the
   handler's library spans and the request root come from different code. *)
let test_chaos_sampled_spans_balanced () =
  let config = { Server.default_config with trace_sample = 1 } in
  let srv = Server.create ~config (Lazy.force service) in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let out, _ = run_session srv session_input in
      check_bool "session answered" true (String.length out > 0);
      let events = Server.trace_events srv in
      check_bool "sampling recorded events" true (List.length events > 0);
      (* begin/end balance over the whole ring *)
      let depth =
        List.fold_left
          (fun d e ->
            (match e.Ring.phase with
            | Ring.Begin -> d + 1
            | Ring.End -> d - 1
            | Ring.Instant -> d))
          0 events
      in
      check_int "begin/end balanced" 0 depth;
      let spans, orphans = Ring.spans events in
      check_int "no orphan End events" 0 orphans;
      let roots =
        List.filter (fun sp -> sp.Ring.stack = [ "request" ]) spans
      in
      (* one root span per non-empty session line, each tagged *)
      let n_requests =
        List.length (List.filter (fun l -> String.trim l <> "") session)
      in
      check_int "one request root per session line" n_requests
        (List.length roots);
      List.iter
        (fun sp ->
          check_bool "root carries req_id" true
            (List.mem_assoc "req_id" sp.Ring.args);
          check_bool "root carries verb" true
            (List.mem_assoc "verb" sp.Ring.args))
        roots;
      (* every non-root span nests under a request root *)
      List.iter
        (fun sp ->
          match sp.Ring.stack with
          | "request" :: _ -> ()
          | stack ->
              Alcotest.failf "span outside a request root: %s"
                (String.concat "/" stack))
        spans;
      (* TRACE drains: a second drain sees nothing *)
      (match Server.handle_request srv Protocol.Trace with
      | Protocol.Ok_lines lines ->
          check_bool "TRACE drains events" true (List.length lines > 0)
      | r -> Alcotest.failf "trace: %s" (Protocol.render r));
      check_int "ring drained" 0 (List.length (Server.trace_events srv)))

(* ------------------------------------------------------------------ *)
(* Sockets: lifecycle, overload, slow-loris, drain                      *)
(* ------------------------------------------------------------------ *)

let tmp_socket () =
  let path = Filename.temp_file "wolves-test" ".sock" in
  Sys.remove path;
  path

let with_server ?config f =
  let path = tmp_socket () in
  match Server.start ?config (Server.Unix_socket path) (Lazy.force service) with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok srv ->
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          if Sys.file_exists path then Sys.remove path)
        (fun () -> f srv path)

let connect path =
  match Client.connect ~timeout_s:5. (`Unix path) with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let request c line =
  match Client.request c line with
  | Ok r -> r
  | Error e -> Alcotest.failf "request %s: %s" line e

(* Drain everything the server sends on a raw connection (until EOF). *)
let slurp ?(timeout_s = 5.) fd =
  let conn = Net_io.of_fd ~read_timeout_s:timeout_s fd in
  let b = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  (try
     let rec go () =
       let n = conn.Net_io.recv chunk 0 (Bytes.length chunk) in
       if n > 0 then begin
         Buffer.add_subbytes b chunk 0 n;
         go ()
       end
     in
     go ()
   with Net_io.Timeout | Net_io.Net_error _ -> ());
  Buffer.contents b

let raw_connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let test_socket_end_to_end () =
  with_server (fun srv path ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* every request kind through real sockets = the direct call *)
          List.iter
            (fun line ->
              match Protocol.parse line with
              | Error _ -> Alcotest.failf "bad test request %s" line
              | Ok req ->
                  Alcotest.check reply_t line
                    (Server.handle_request srv req)
                    (request c line))
            [ "PING"; "LIST"; "VALIDATE fig1"; "VALIDATE nosuch";
              "CORRECT fig3 weak"; "CORRECT fig3 DEADLINE 60000";
              "QUERY fig1 ancestors('12:Display Tree')"; "LINT fig3";
              "ANALYZE fig1"; "CORRECT big optimal" ];
          (* a malformed request leaves the connection usable *)
          (match request c "FROB nonsense" with
          | Protocol.Err ("unknown-command", _) -> ()
          | r -> Alcotest.failf "malformed: %s" (Protocol.render r));
          Alcotest.check reply_t "still serving after malformed"
            (Protocol.Ok_lines [ "pong" ])
            (request c "PING");
          (* server-owned replies *)
          (match request c "HEALTH" with
          | Protocol.Ok_lines [ "ok"; corpus ] ->
              check_string "health corpus" "corpus 3" corpus
          | r -> Alcotest.failf "health: %s" (Protocol.render r));
          (match request c "STATS" with
          | Protocol.Ok_lines lines ->
              (* 5 header counters + one requests_<verb> per verb family +
                 8 level/latency/drain lines *)
              check_int "stats line count"
                (13 + Array.length Server.verbs)
                (List.length lines);
              check_bool "stats leads with uptime" true
                (String.length (List.hd lines) > 8
                && String.sub (List.hd lines) 0 8 = "uptime_s");
              (* per-verb counters reflect this very session: two PINGs and
                 two VALIDATEs answered so far, one malformed FROB *)
              check_bool "per-verb ping counter" true
                (List.mem "requests_ping 2" lines);
              check_bool "per-verb validate counter" true
                (List.mem "requests_validate 2" lines);
              check_bool "per-verb malformed counter" true
                (List.mem "requests_malformed 1" lines)
          | r -> Alcotest.failf "stats: %s" (Protocol.render r)));
      let s = Server.stats srv in
      check_bool "requests counted" true (s.Server.requests >= 13);
      check_bool "errors counted" true (s.Server.errors >= 3);
      check_int "one connection" 1 s.Server.connections)

(* METRICS over a real socket renders a valid Prometheus text page; TRACE
   without sampling is a typed refusal, not a hang or a crash. *)
let test_socket_metrics_exposition () =
  with_server (fun _srv path ->
      let c = connect path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          List.iter
            (fun line -> ignore (request c line))
            [ "PING"; "VALIDATE fig1"; "FROB nonsense" ];
          (match request c "METRICS" with
          | Protocol.Ok_lines lines ->
              let page = String.concat "\n" lines ^ "\n" in
              (match Prom.check page with
              | Ok n ->
                  check_bool "exposition non-trivial" true (n > 20)
              | Error e ->
                  Alcotest.failf "METRICS fails the exposition checker: %s" e);
              check_bool "per-verb counter exposed" true
                (List.mem
                   "wolves_server_verb_requests_total{verb=\"ping\"} 1" lines);
              check_bool "latency histogram exposed" true
                (List.exists
                   (fun l ->
                     String.length l > 36
                     && String.sub l 0 36
                        = "wolves_server_latency_seconds_bucket")
                   lines)
          | r -> Alcotest.failf "metrics: %s" (Protocol.render r));
          match request c "TRACE" with
          | Protocol.Err ("bad-request", _) -> ()
          | r -> Alcotest.failf "trace while sampling off: %s" (Protocol.render r)))

let test_socket_quit_and_reconnect () =
  with_server (fun _srv path ->
      let c = connect path in
      Alcotest.check reply_t "quit" (Protocol.Ok_lines [ "bye" ])
        (request c "QUIT");
      (* server closed the connection after QUIT *)
      (match Client.request c "PING" with
      | Error _ -> ()
      | Ok r -> Alcotest.failf "after quit: %s" (Protocol.render r));
      Client.close c;
      let c2 = connect path in
      Alcotest.check reply_t "fresh connection serves" (Protocol.Ok_lines [ "pong" ])
        (request c2 "PING");
      Client.close c2)

let test_socket_too_large_closes () =
  let config = { Server.default_config with max_request_bytes = 32 } in
  with_server ~config (fun _srv path ->
      let c = connect path in
      (match request c ("VALIDATE " ^ String.make 100 'x') with
      | Protocol.Err ("too-large", _) -> ()
      | r -> Alcotest.failf "oversized: %s" (Protocol.render r));
      (* framing is lost, the server must hang up *)
      (match Client.request c "PING" with
      | Error _ -> ()
      | Ok r -> Alcotest.failf "after oversized: %s" (Protocol.render r));
      Client.close c)

let test_socket_slow_loris () =
  let config =
    { Server.default_config with read_timeout_s = 0.3; workers = 2 }
  in
  with_server ~config (fun srv path ->
      let fd = raw_connect path in
      (* half a request, then silence: the read deadline must cut us off *)
      ignore (Unix.write_substring fd "VALIDATE fi" 0 11);
      let out = slurp ~timeout_s:3. fd in
      check_string "slow-loris gets the timeout error" timeout_line out;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* and the worker is free again for honest clients *)
      let c = connect path in
      Alcotest.check reply_t "server alive after slow-loris"
        (Protocol.Ok_lines [ "pong" ])
        (request c "PING");
      Client.close c;
      check_bool "timeout counted" true ((Server.stats srv).Server.timeouts >= 1))

let test_socket_overload_shedding () =
  let config =
    { Server.default_config with
      workers = 1;
      queue_depth = 1;
      read_timeout_s = 2.;
      retry_after_ms = 70 }
  in
  with_server ~config (fun srv path ->
      (* wedge the single worker with a never-completing request ... *)
      let hog = raw_connect path in
      ignore (Unix.write_substring hog "VALID" 0 5);
      Unix.sleepf 0.3;
      (* ... fill the one queue slot ... *)
      let queued = raw_connect path in
      Unix.sleepf 0.2;
      (* ... and the next arrival is shed in O(1) *)
      let shed1 = raw_connect path in
      let out1 = slurp ~timeout_s:3. shed1 in
      check_string "shed connection gets OVERLOADED" "OVERLOADED 70\n" out1;
      (try Unix.close shed1 with Unix.Unix_error _ -> ());
      check_bool "shed counted" true ((Server.stats srv).Server.shed >= 1);
      (* release the worker: the queued client is served normally *)
      (try Unix.close hog with Unix.Unix_error _ -> ());
      ignore (Unix.write_substring queued "PING\nQUIT\n" 0 10);
      let out = slurp ~timeout_s:3. queued in
      check_string "queued client served after the hog leaves"
        "OK 1\npong\nOK 1\nbye\n" out;
      (try Unix.close queued with Unix.Unix_error _ -> ()))

let test_socket_drain () =
  let config =
    { Server.default_config with
      workers = 1;
      read_timeout_s = 0.5;
      drain_grace_s = 1. }
  in
  let path = tmp_socket () in
  match Server.start ~config (Server.Unix_socket path) (Lazy.force service) with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok srv ->
      (* one connection being served, one waiting in the queue *)
      let active = raw_connect path in
      Unix.sleepf 0.2;
      let queued = raw_connect path in
      Unix.sleepf 0.1;
      check_bool "not draining yet" false (Server.stop_requested srv);
      Server.request_stop srv;
      check_bool "draining flagged" true (Server.stop_requested srv);
      Server.stop srv;
      check_bool "drained" true (Server.drained srv);
      check_bool "socket unlinked" false (Sys.file_exists path);
      (* the queued-but-never-served connection got a typed refusal *)
      let out = slurp ~timeout_s:2. queued in
      check_string "queued connection refused on drain"
        (Protocol.render (Protocol.Err ("shutting-down", "server is draining")))
        out;
      (try Unix.close queued with Unix.Unix_error _ -> ());
      (try Unix.close active with Unix.Unix_error _ -> ());
      (* stop is idempotent, and new connections are impossible *)
      Server.stop srv;
      (match Client.connect ~timeout_s:1. (`Unix path) with
      | Error _ -> ()
      | Ok c ->
          Client.close c;
          Alcotest.fail "connected to a drained server")

let test_ephemeral_tcp_port () =
  let config = { Server.default_config with workers = 1 } in
  match Server.start ~config (Server.Tcp ("127.0.0.1", 0)) (Lazy.force service) with
  | Error e -> Alcotest.failf "tcp start: %s" e
  | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          match Server.address srv with
          | Some (Unix.ADDR_INET (_, port)) ->
              check_bool "ephemeral port assigned" true (port > 0);
              let c =
                match Client.connect ~timeout_s:5. (`Tcp ("127.0.0.1", port)) with
                | Ok c -> c
                | Error e -> Alcotest.failf "tcp connect: %s" e
              in
              Alcotest.check reply_t "tcp ping" (Protocol.Ok_lines [ "pong" ])
                (request c "PING");
              Client.close c
          | _ -> Alcotest.fail "no bound address")

let test_config_validation () =
  let bad c = Server.create ~config:c (Lazy.force service) in
  let d = Server.default_config in
  List.iter
    (fun (name, c) ->
      match bad c with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s accepted" name)
    [ ("workers 0", { d with Server.workers = 0 });
      ("queue 0", { d with Server.queue_depth = 0 });
      ("timeout 0", { d with Server.read_timeout_s = 0. });
      ("tiny request bound", { d with Server.max_request_bytes = 4 });
      ("negative retry", { d with Server.retry_after_ms = -1 });
      ("negative grace", { d with Server.drain_grace_s = -1. }) ]

(* ------------------------------------------------------------------ *)
(* The binary: serve/drain, stderr discipline, artifact-write exits     *)
(* ------------------------------------------------------------------ *)

(* The CLI binary lives next to this test executable in the build tree
   (_build/default/{test,bin}), wherever the runner's cwd is. *)
let exe =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    "wolves.exe"

let temp_path suffix =
  let p = Filename.temp_file "wolves-cli" suffix in
  Sys.remove p;
  p

let run_cli args ~out ~err =
  let cmd =
    Printf.sprintf "%s %s >%s 2>%s"
      (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  Sys.command cmd

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Satellite: the resume dropped-tail warning must go to stderr — stdout
   belongs to the command's own (possibly --json-consumed) output. *)
let test_cli_resume_warning_on_stderr () =
  let spec = temp_path ".moml" in
  let trace = temp_path ".csv" in
  let out = temp_path ".out" and err = temp_path ".err" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ spec; trace; out; err ])
    (fun () ->
      check_int "generate" 0
        (run_cli
           [ "generate"; "-o"; spec; "--family"; "pipeline"; "--size"; "6";
             "--seed"; "1" ]
           ~out ~err);
      check_int "simulate with checkpoint" 0
        (run_cli
           [ "simulate"; spec; "--runs"; "1"; "--save-trace"; trace ]
           ~out ~err);
      (* tear the checkpoint: drop the footer, cut the last row mid-line *)
      let rows =
        read_file trace |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "" && not (String.length l > 4 && String.sub l 0 4 = "#end"))
      in
      check_bool "trace has rows" true (List.length rows > 2);
      let last = List.nth rows (List.length rows - 1) in
      let torn =
        String.concat "\n" (List.filteri (fun i _ -> i < List.length rows - 1) rows)
        ^ "\n"
        ^ String.sub last 0 (String.length last / 2)
      in
      let oc = open_out_bin trace in
      output_string oc torn;
      close_out oc;
      check_int "resume from torn checkpoint" 0
        (run_cli [ "simulate"; spec; "--resume"; trace ] ~out ~err);
      let stdout_text = read_file out and stderr_text = read_file err in
      check_bool "warning lands on stderr" true
        (contains stderr_text "dropped torn checkpoint tail");
      check_bool "stdout free of the warning" false
        (contains stdout_text "dropped torn checkpoint tail");
      check_bool "resume summary still on stdout" true
        (contains stdout_text "resumed from"))

(* Satellite: a failed artifact write (metrics dump) must flip the exit
   code even when the command itself succeeded. *)
let test_cli_metrics_write_failure_exit () =
  let spec = temp_path ".moml" in
  let out = temp_path ".out" and err = temp_path ".err" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ spec; out; err ])
    (fun () ->
      check_int "generate" 0
        (run_cli
           [ "generate"; "-o"; spec; "--family"; "pipeline"; "--size"; "6";
             "--seed"; "1" ]
           ~out ~err);
      (* sound view, writable metrics: everything exits 0 *)
      let good = temp_path ".json" in
      check_int "validate with writable metrics" 0
        (run_cli [ "validate"; spec; "--metrics"; good ] ~out ~err);
      check_bool "metrics dump written" true (Sys.file_exists good);
      (try Sys.remove good with Sys_error _ -> ());
      (* same command, unwritable dump path: primary output intact, exit 1 *)
      let code =
        run_cli
          [ "validate"; spec; "--metrics"; "/nonexistent-dir/m.json" ]
          ~out ~err
      in
      check_int "unwritable metrics dump exits non-zero" 1 code;
      check_bool "failure reported on stderr" true
        (contains (read_file err) "cannot write");
      check_bool "primary output still produced" true
        (contains (read_file out) "sound"))

(* The acceptance gate: a served corpus answers over a Unix socket, and
   SIGTERM drains gracefully with exit status 0. *)
let test_cli_serve_sigterm_drain () =
  let sock = temp_path ".sock" in
  let out = temp_path ".out" and err = temp_path ".err" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out_fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let err_fd = Unix.openfile err [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--unix-socket"; sock; "--synthesize"; "--sizes"; "8";
         "--per-cell"; "1"; "--workers"; "2" |]
      devnull out_fd err_fd
  in
  Unix.close devnull;
  Unix.close out_fd;
  Unix.close err_fd;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; out; err ])
    (fun () ->
      (* wait for the listener *)
      let deadline = Unix.gettimeofday () +. 20. in
      while not (Sys.file_exists sock) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.05
      done;
      check_bool "socket appears" true (Sys.file_exists sock);
      let c = connect sock in
      Alcotest.check reply_t "served ping" (Protocol.Ok_lines [ "pong" ])
        (request c "PING");
      (match request c "LIST" with
      | Protocol.Ok_lines lines ->
          check_bool "synthesized corpus non-empty" true (List.length lines > 0)
      | r -> Alcotest.failf "list: %s" (Protocol.render r));
      Client.close c;
      Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "serve exited %d on SIGTERM" n
      | Unix.WSIGNALED s -> Alcotest.failf "serve killed by signal %d" s
      | Unix.WSTOPPED _ -> Alcotest.fail "serve stopped");
      check_bool "socket unlinked on drain" false (Sys.file_exists sock);
      check_bool "drain summary printed" true
        (contains (read_file out) "drained:"))

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wolves_server"
    [ ( "protocol",
        [ Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "parse_reply_stream" `Quick test_parse_reply_stream ] );
      ( "service",
        [ Alcotest.test_case "load and lookup" `Quick test_service_load;
          Alcotest.test_case "handle" `Quick test_service_handle ] );
      ( "chaos",
        [ Alcotest.test_case "clean, short reads/writes, CRLF" `Quick
            test_chaos_clean_and_short;
          Alcotest.test_case "disconnect byte sweep" `Quick
            test_chaos_disconnect_sweep;
          Alcotest.test_case "stall byte sweep" `Quick test_chaos_stall_sweep;
          Alcotest.test_case "send-error byte sweep" `Quick
            test_chaos_send_error_sweep;
          Alcotest.test_case "garbage byte sweep" `Quick test_chaos_garbage_sweep;
          qt chaos_random;
          Alcotest.test_case "raising request is isolated" `Quick
            test_chaos_isolation;
          Alcotest.test_case "oversized request" `Quick test_chaos_too_long;
          Alcotest.test_case "access log exactly-once under faults" `Quick
            test_chaos_access_log_exactly_once;
          Alcotest.test_case "sampled spans reconstruct balanced" `Quick
            test_chaos_sampled_spans_balanced ] );
      ( "sockets",
        [ Alcotest.test_case "end-to-end byte identity" `Quick
            test_socket_end_to_end;
          Alcotest.test_case "metrics exposition and trace gating" `Quick
            test_socket_metrics_exposition;
          Alcotest.test_case "quit and reconnect" `Quick
            test_socket_quit_and_reconnect;
          Alcotest.test_case "oversized request closes" `Quick
            test_socket_too_large_closes;
          Alcotest.test_case "slow-loris cut off" `Quick test_socket_slow_loris;
          Alcotest.test_case "overload shedding" `Quick
            test_socket_overload_shedding;
          Alcotest.test_case "graceful drain" `Quick test_socket_drain;
          Alcotest.test_case "ephemeral tcp port" `Quick test_ephemeral_tcp_port;
          Alcotest.test_case "config validation" `Quick test_config_validation ] );
      ( "binary",
        [ Alcotest.test_case "resume warning on stderr" `Slow
            test_cli_resume_warning_on_stderr;
          Alcotest.test_case "metrics write failure exit code" `Slow
            test_cli_metrics_write_failure_exit;
          Alcotest.test_case "serve drains on SIGTERM" `Slow
            test_cli_serve_sigterm_drain ] ) ]
