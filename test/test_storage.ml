(* The crash-safe store: checksums, recovery, and the crash matrix — for
   every injection point during an ingest, reopening recovers exactly the
   committed records and verify reports zero issues. *)

module S = Wolves_storage.Store
module Sio = Wolves_storage.Storage_io
module Crc = Wolves_storage.Crc32c

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh_dir () =
  let dir = Filename.temp_file "wolves_store" "" in
  Sys.remove dir;
  dir

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" name S.pp_error e

(* --- checksums --- *)

let test_crc32c () =
  (* The RFC 3720 check value, plus composition and empty-string edges. *)
  check_int "check value" 0xE3069283 (Crc.string "123456789");
  check_int "empty" 0 (Crc.string "");
  check_int "substring = whole"
    (Crc.string "456")
    (Crc.substring "123456789" ~pos:3 ~len:3);
  check_int "update composes"
    (Crc.string "123456789")
    (Crc.update (Crc.string "1234") "123456789" ~pos:4 ~len:5);
  check_bool "single flip changes crc" true
    (Crc.string "123456789" <> Crc.string "123456789\x00"
     && Crc.string "123456799" <> Crc.string "123456789")

(* --- basic lifecycle --- *)

let small_config = { S.shards = 3; segment_bytes = 2048 }

let corpus n =
  List.init n (fun i ->
      ( Printf.sprintf "wf-%03d" i,
        String.make (40 + (i * 7 mod 60)) (Char.chr (65 + (i mod 26))) ))

let ingest ?(sync = true) ?(config = small_config) ?io dir entries =
  let acked = ref 0 in
  (try
     match S.init ?io ~config dir with
     | Ok t ->
       List.iter
         (fun (id, v) ->
           match S.append t ~sync S.Workflow ~id v with
           | Ok () -> incr acked
           | Error _ -> ())
         entries;
       ignore (S.close t)
     | Error e -> Alcotest.failf "init: %a" S.pp_error e
   with Sio.Crashed _ -> ());
  !acked

let test_roundtrip () =
  with_dir @@ fun dir ->
  let entries = corpus 40 in
  let acked = ingest dir entries in
  check_int "all appends acked" 40 acked;
  let t, recovery = ok "open" (S.open_ dir) in
  check_int "all records recovered" 40 recovery.S.records_recovered;
  check_bool "clean close needs no repairs" true
    (recovery.S.truncations = [] && recovery.S.dropped_segments = []
    && not recovery.S.manifest_rebuilt);
  let records = ok "records" (S.records t) in
  check_int "record count" 40 (List.length records);
  List.iteri
    (fun i (r : S.record) ->
      check_int "lsn order" i r.S.lsn;
      check_bool "value intact" true
        (List.assoc r.S.id entries = r.S.value))
    records;
  let stats = S.stats t in
  check_int "stats records" 40 stats.S.n_records;
  check_int "stats shards" 3 stats.S.n_shards;
  check_bool "ids spread over shards" true (stats.S.n_segments >= 3);
  ignore (S.close t)

let test_latest_supersedes () =
  with_dir @@ fun dir ->
  let t = ok "init" (S.init ~config:small_config dir) in
  List.iter
    (fun (id, v) -> ok "append" (S.append t S.Workflow ~id v))
    [ ("a", "v1"); ("b", "v1"); ("a", "v2"); ("a", "v3"); ("b", "v2") ];
  ok "ckpt" (S.append t S.Checkpoint ~id:"a" "trace");
  ok "close" (S.close t);
  let t, _ = ok "open" (S.open_ dir) in
  let latest = ok "latest" (S.latest t S.Workflow) in
  check_int "one record per id" 2 (List.length latest);
  List.iter
    (fun (r : S.record) ->
      check_bool "newest version wins" true
        (r.S.value = if r.S.id = "a" then "v3" else "v2"))
    latest;
  let ck = ok "latest ckpt" (S.latest t S.Checkpoint) in
  check_int "kinds are separate keyspaces" 1 (List.length ck);
  ignore (S.close t)

let test_init_refuses_existing () =
  with_dir @@ fun dir ->
  ignore (ingest dir (corpus 3));
  match S.init dir with
  | Ok _ -> Alcotest.fail "init over an existing store must fail"
  | Error _ -> ()

let test_shard_routing () =
  check_bool "routing is deterministic" true
    (S.shard_of_id ~shards:7 "wf-001" = S.shard_of_id ~shards:7 "wf-001");
  List.iter
    (fun shards ->
      List.iter
        (fun (id, _) ->
          let s = S.shard_of_id ~shards id in
          check_bool "in range" true (s >= 0 && s < shards))
        (corpus 50))
    [ 1; 2; 3; 16; 256 ]

(* --- the crash matrix --- *)

(* Sweep every mutating-operation index: crash there, reopen with clean I/O,
   and require (a) at least every acked record survives, (b) every surviving
   record is genuine, (c) verify is clean after recovery. *)
let crash_matrix_ops () =
  let entries = corpus 40 in
  (* measure the fault-free op count *)
  let total_ops =
    with_dir @@ fun dir ->
    let io, inj = Sio.faulty (Sio.Crash_after_ops max_int) Sio.system in
    ignore (ingest ~io dir entries);
    inj.Sio.ops_seen
  in
  check_bool "ingest issues many ops" true (total_ops > 80);
  for n = 0 to total_ops - 1 do
    with_dir @@ fun dir ->
    let io, _ = Sio.faulty (Sio.Crash_after_ops n) Sio.system in
    let acked = ingest ~io dir entries in
    match S.open_ dir with
    | Ok (t, _) ->
      let records = ok "records" (S.records t) in
      if List.length records < acked then
        Alcotest.failf "op %d: acked %d but recovered only %d" n acked
          (List.length records);
      List.iter
        (fun (r : S.record) ->
          match List.assoc_opt r.S.id entries with
          | Some v when v = r.S.value -> ()
          | Some _ -> Alcotest.failf "op %d: corrupt value for %s" n r.S.id
          | None -> Alcotest.failf "op %d: ghost record %s" n r.S.id)
        records;
      ignore (S.close t);
      let report = ok "verify" (S.verify dir) in
      if report.S.issues <> [] then
        Alcotest.failf "op %d: %d verify issue(s) after recovery" n
          (List.length report.S.issues)
    | Error _ when acked = 0 -> () (* crashed before anything durable *)
    | Error e -> Alcotest.failf "op %d: reopen failed: %a" n S.pp_error e
  done

(* Sweep every byte offset of a small ingest: the write crossing that byte
   is torn mid-record, which recovery must truncate away. *)
let crash_matrix_bytes () =
  let entries = corpus 4 in
  let total_bytes =
    with_dir @@ fun dir ->
    let io, inj = Sio.faulty (Sio.Crash_after_ops max_int) Sio.system in
    ignore (ingest ~io dir entries);
    inj.Sio.bytes_written
  in
  check_bool "ingest writes some bytes" true (total_bytes > 500);
  for k = 0 to total_bytes - 1 do
    with_dir @@ fun dir ->
    let io, _ = Sio.faulty (Sio.Crash_at_byte k) Sio.system in
    let acked = ingest ~io dir entries in
    match S.open_ dir with
    | Ok (t, _) ->
      let records = ok "records" (S.records t) in
      if List.length records < acked then
        Alcotest.failf "byte %d: acked %d but recovered only %d" k acked
          (List.length records);
      ignore (S.close t);
      let report = ok "verify" (S.verify dir) in
      if report.S.issues <> [] then
        Alcotest.failf "byte %d: verify issues after recovery" k
    | Error _ when acked = 0 -> ()
    | Error e -> Alcotest.failf "byte %d: reopen failed: %a" k S.pp_error e
  done

(* Randomised composition: a random corpus, a random crash point, and a
   reopen — the same acked-prefix property, over shapes the deterministic
   sweeps do not enumerate. *)
let crash_matrix_random =
  QCheck2.Test.make ~name:"random crash point preserves acked records"
    ~count:60
    QCheck2.Gen.(
      triple (int_range 1 30) (int_range 0 200) (int_range 1 4))
    (fun (n_entries, crash_op, shards) ->
      with_dir @@ fun dir ->
      let entries = corpus n_entries in
      let io, _ = Sio.faulty (Sio.Crash_after_ops crash_op) Sio.system in
      let acked =
        ingest ~config:{ S.shards; segment_bytes = 1024 } ~io dir entries
      in
      match S.open_ dir with
      | Ok (t, _) ->
        let records = ok "records" (S.records t) in
        ignore (S.close t);
        List.length records >= acked
        && List.for_all
             (fun (r : S.record) ->
               List.assoc_opt r.S.id entries = Some r.S.value)
             records
        && (ok "verify" (S.verify dir)).S.issues = []
      | Error _ -> acked = 0)

(* --- the catalog swap --- *)

let test_manifest_swap_atomic () =
  (* A crash at any op during a re-open-and-append session must leave the
     directory openable: either the old catalog, the new one, or a rebuild
     from segments — never a torn catalog that bricks the store. *)
  let entries = corpus 12 in
  let more = List.map (fun (id, v) -> (id ^ "-bis", v)) entries in
  let seed_store dir =
    ignore (ingest dir entries)
  in
  let continue_ops =
    with_dir @@ fun dir ->
    seed_store dir;
    let io, inj = Sio.faulty (Sio.Crash_after_ops max_int) Sio.system in
    (try
       let t, _ = ok "reopen" (S.open_ ~io dir) in
       List.iter
         (fun (id, v) -> ignore (S.append t ~sync:true S.Workflow ~id v))
         more;
       ignore (S.close t)
     with Sio.Crashed _ -> ());
    inj.Sio.ops_seen
  in
  for n = 0 to continue_ops - 1 do
    with_dir @@ fun dir ->
    seed_store dir;
    let io, _ = Sio.faulty (Sio.Crash_after_ops n) Sio.system in
    (try
       match S.open_ ~io dir with
       | Ok (t, _) ->
         List.iter
           (fun (id, v) -> ignore (S.append t ~sync:true S.Workflow ~id v))
           more;
         ignore (S.close t)
       | Error _ -> ()
     with Sio.Crashed _ -> ());
    (* the first ingest was fully synced: its records must all survive *)
    let t, _ = ok "final open" (S.open_ dir) in
    let records = ok "records" (S.records t) in
    List.iter
      (fun (id, v) ->
        match
          List.find_opt (fun (r : S.record) -> r.S.id = id) records
        with
        | Some r when r.S.value = v -> ()
        | Some _ -> Alcotest.failf "op %d: corrupt pre-crash record %s" n id
        | None -> Alcotest.failf "op %d: lost pre-crash record %s" n id)
      entries;
    ignore (S.close t)
  done

let test_catalog_rebuild () =
  with_dir @@ fun dir ->
  ignore (ingest dir (corpus 20));
  Sys.remove (Filename.concat dir "CATALOG");
  let t, recovery = ok "open" (S.open_ dir) in
  check_bool "manifest rebuilt" true recovery.S.manifest_rebuilt;
  check_int "all records survive the rebuild" 20
    (List.length (ok "records" (S.records t)));
  ignore (S.close t);
  (* the rebuilt catalog persists *)
  let _, recovery = ok "reopen" (S.open_ dir) in
  check_bool "catalog now present" true (not recovery.S.manifest_rebuilt)

(* --- corruption detection --- *)

(* Flip every single byte of every segment in turn: verify must flag each
   flip (and recovery must never surface a corrupt record). *)
let test_bitflip_every_byte () =
  with_dir @@ fun dir ->
  ignore (ingest ~config:{ S.shards = 2; segment_bytes = 4096 } dir (corpus 6));
  check_int "baseline verifies clean" 0
    (List.length (ok "verify" (S.verify dir)).S.issues);
  let segs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seg")
  in
  check_bool "have segments" true (segs <> []);
  List.iter
    (fun seg ->
      let path = Filename.concat dir seg in
      let original =
        In_channel.with_open_bin path In_channel.input_all
      in
      String.iteri
        (fun i _ ->
          let flipped = Bytes.of_string original in
          Bytes.set flipped i
            (Char.chr (Char.code original.[i] lxor (1 lsl (i mod 8))));
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_bytes oc flipped);
          (match S.verify dir with
           | Ok report ->
             if report.S.issues = [] then
               Alcotest.failf "flip of %s byte %d went undetected" seg i
           | Error _ -> () (* catalog-level corruption is also detection *));
          (* recovery must never replay the corrupt byte into a record *)
          (match S.open_ dir with
           | Ok (t, _) ->
             List.iter
               (fun (r : S.record) ->
                 if List.assoc_opt r.S.id (corpus 6) <> Some r.S.value then
                   Alcotest.failf
                     "flip of %s byte %d surfaced a corrupt record" seg i)
               (ok "records" (S.records t));
             ignore (S.close t)
           | Error _ -> ());
          (* restore the directory for the next flip *)
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc original);
          (match S.open_ dir with
           | Ok (t, _) -> ignore (S.close t)
           | Error _ -> ()))
        original)
    segs

(* --- survivable errors --- *)

(* Every write index in turn raises Io_failure once; the store must roll
   back the torn append and stay usable for the rest of the corpus. *)
let test_transient_error_rolls_back () =
  let entries = corpus 10 in
  for n = 0 to 30 do
    with_dir @@ fun dir ->
    let io, inj = Sio.faulty (Sio.Error_on_op (Sio.Write, n)) Sio.system in
    match S.init ~io ~config:small_config dir with
    | Error _ ->
      (* init hit the failpoint; nothing durable expected *)
      check_bool "failpoint fired" true inj.Sio.fired
    | Ok t ->
      let acked = ref [] in
      List.iter
        (fun (id, v) ->
          match S.append t ~sync:true S.Workflow ~id v with
          | Ok () -> acked := id :: !acked
          | Error _ -> ())
        entries;
      ignore (S.close t);
      let t, _ = ok "reopen" (S.open_ dir) in
      let records = ok "records" (S.records t) in
      List.iter
        (fun id ->
          check_bool "acked record survives" true
            (List.exists (fun (r : S.record) -> r.S.id = id) records))
        !acked;
      ignore (S.close t);
      check_int "verify clean after transient error" 0
        (List.length (ok "verify" (S.verify dir)).S.issues)
  done

let () =
  Alcotest.run "wolves-storage"
    [ ( "crc32c",
        [ Alcotest.test_case "vectors and composition" `Quick test_crc32c ] );
      ( "lifecycle",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "latest supersedes" `Quick test_latest_supersedes;
          Alcotest.test_case "init refuses existing" `Quick
            test_init_refuses_existing;
          Alcotest.test_case "shard routing" `Quick test_shard_routing ] );
      ( "crash-matrix",
        [ Alcotest.test_case "every op index" `Slow crash_matrix_ops;
          Alcotest.test_case "every byte offset" `Slow crash_matrix_bytes;
          QCheck_alcotest.to_alcotest crash_matrix_random ] );
      ( "catalog",
        [ Alcotest.test_case "swap is atomic" `Slow test_manifest_swap_atomic;
          Alcotest.test_case "rebuild from segments" `Quick
            test_catalog_rebuild ] );
      ( "corruption",
        [ Alcotest.test_case "every bitflip detected" `Slow
            test_bitflip_every_byte ] );
      ( "transient-errors",
        [ Alcotest.test_case "write error rolls back" `Quick
            test_transient_error_rolls_back ] ) ]
