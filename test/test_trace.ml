(* Wolves_trace: ring-buffer semantics, span reconstruction, the three
   exporters (Chrome trace-event JSON, JSONL, collapsed stacks), the profile
   aggregator, and the no-observable-effect guarantee when tracing is off. *)

module M = Wolves_obs.Metrics
module T = Wolves_trace.Trace
module Export = Wolves_trace.Export
module Profile = Wolves_trace.Profile
module Json = Wolves_cli.Json
module C = Wolves_core.Corrector
module Moml = Wolves_moml.Moml
module Gen = Wolves_workload.Generate
module Views = Wolves_workload.Views

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* A deterministic unsound view: correcting it crosses every instrumented
   layer (corrector span -> per-composite spans -> validate/split timers). *)
let unsound_view () =
  let spec = Gen.generate Gen.Layered ~seed:3 ~size:20 in
  let view = Views.build ~seed:3 (Views.Connected_groups 4) spec in
  Views.inject_unsoundness ~seed:4 ~attempts:80 view

(* Pin the corrector to one domain: these tests assert on the event stream,
   and parallel workers record into metric shards with the tracer
   suppressed, so their per-composite spans would not be captured. *)
let traced_correction () =
  let view = unsound_view () in
  let c = T.create () in
  ignore (T.with_tracing c (fun () -> C.correct ~domains:1 C.Strong view));
  T.events c

(* ------------------------------------------------------------------ *)
(* ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow () =
  M.reset ();
  let c = T.create ~capacity:4 () in
  check_int "capacity as requested" 4 (T.capacity c);
  M.enabled (fun () ->
      for i = 0 to 6 do
        T.record c T.Instant (Printf.sprintf "e%d" i) []
      done);
  check_int "length capped at capacity" 4 (T.length c);
  check_int "three events evicted" 3 (T.dropped c);
  check_bool "oldest dropped, newest retained, oldest-first order" true
    (List.map (fun (e : T.event) -> e.T.name) (T.events c)
     = [ "e3"; "e4"; "e5"; "e6" ]);
  check_int "registry counted the drops" 3
    (M.counter_value (M.counter "trace.dropped"));
  check_int "registry counted every record" 7
    (M.counter_value (M.counter "trace.events"));
  T.clear c;
  check_int "clear empties" 0 (T.length c);
  check_int "clear resets the drop count" 0 (T.dropped c);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.create: capacity must be >= 1")
    (fun () -> ignore (T.create ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* span reconstruction                                                 *)
(* ------------------------------------------------------------------ *)

let ev phase name ts = { T.phase; name; ts; args = [] }

let test_spans_nested () =
  let spans, orphans =
    T.spans
      [ ev T.Begin "a" 0.0; ev T.Begin "b" 1.0; ev T.End "b" 2.0;
        ev T.Instant "i" 2.5; ev T.End "a" 3.0 ]
  in
  check_int "no orphans" 0 orphans;
  check_int "two spans" 2 (List.length spans);
  let b = List.find (fun (s : T.span) -> s.T.stack = [ "a"; "b" ]) spans in
  let a = List.find (fun (s : T.span) -> s.T.stack = [ "a" ]) spans in
  check (Alcotest.float 1e-9) "inner self = own duration" 1.0 b.T.self_s;
  check (Alcotest.float 1e-9) "outer self excludes the child" 2.0 a.T.self_s

let test_spans_orphan_and_unclosed () =
  (* An End whose Begin fell off the ring, then a span left open. *)
  let spans, orphans =
    T.spans [ ev T.End "lost" 0.0; ev T.Begin "a" 1.0; ev T.Begin "b" 2.0 ]
  in
  check_int "orphaned End counted and skipped" 1 orphans;
  check_int "open spans closed at the last timestamp" 2 (List.length spans);
  let a = List.find (fun (s : T.span) -> s.T.stack = [ "a" ]) spans in
  check (Alcotest.float 1e-9) "synthesized end uses the last ts" 2.0
    a.T.end_ts

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let chrome_events evs =
  match Json.member "traceEvents" (Export.to_chrome_json evs) with
  | Some (Json.List items) -> items
  | _ -> Alcotest.fail "export lacks a traceEvents array"

let str_field key j =
  match Json.member key j with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "event field %S missing or not a string" key

let num_field key j =
  match Option.bind (Json.member key j) Json.to_float_opt with
  | Some f -> f
  | None -> Alcotest.failf "event field %S missing or not numeric" key

let test_chrome_structure () =
  let items = chrome_events (traced_correction ()) in
  check_bool "trace is non-empty" true (items <> []);
  (* Every event structurally valid: ph/name/ts/pid/tid, dur on E. *)
  let last_ts = ref neg_infinity in
  let depth = ref 0 in
  let max_depth = ref 0 in
  let balance = ref 0 in
  List.iter
    (fun j ->
      let ph = str_field "ph" j in
      ignore (str_field "name" j);
      ignore (str_field "cat" j);
      let ts = num_field "ts" j in
      check_bool "timestamps monotone non-decreasing" true (ts >= !last_ts);
      check_bool "timestamps non-negative" true (ts >= 0.0);
      last_ts := ts;
      check (Alcotest.float 0.0) "pid constant" 1.0 (num_field "pid" j);
      check (Alcotest.float 0.0) "tid constant" 1.0 (num_field "tid" j);
      match ph with
      | "B" ->
        incr depth;
        incr balance;
        if !depth > !max_depth then max_depth := !depth
      | "E" ->
        check_bool "dur on end events is non-negative" true
          (num_field "dur" j >= 0.0);
        check_bool "no End before its Begin" true (!depth > 0);
        decr depth;
        decr balance
      | "i" -> ()
      | other -> Alcotest.failf "unexpected phase %S" other)
    items;
  check_int "begin/end pairs balance" 0 !balance;
  check_bool "corrector nesting reaches depth >= 2" true (!max_depth >= 2)

let test_chrome_balances_truncated_stream () =
  (* A tiny ring that drops the oldest events: the export must still emit a
     balanced document (orphaned Ends skipped, open Begins closed). *)
  let view = unsound_view () in
  let c = T.create ~capacity:8 () in
  ignore (T.with_tracing c (fun () -> C.correct ~domains:1 C.Strong view));
  check_bool "the ring did overflow" true (T.dropped c > 0);
  let balance = ref 0 in
  List.iter
    (fun j ->
      match str_field "ph" j with
      | "B" -> incr balance
      | "E" ->
        decr balance;
        check_bool "never more Ends than Begins" true (!balance >= 0)
      | _ -> ())
    (chrome_events (T.events c));
  check_int "document balances after truncation" 0 !balance

(* ------------------------------------------------------------------ *)
(* JSONL and collapsed-stack exports                                   *)
(* ------------------------------------------------------------------ *)

let test_jsonl () =
  let evs = traced_correction () in
  let lines =
    String.split_on_char '\n' (Export.to_jsonl evs)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per event" (List.length evs) (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error msg -> Alcotest.failf "JSONL line does not parse: %s" msg
      | Ok j ->
        check_bool "ph is B/E/i" true
          (List.mem (str_field "ph" j) [ "B"; "E"; "i" ]);
        ignore (str_field "name" j);
        check_bool "ts_us numeric and non-negative" true
          (num_field "ts_us" j >= 0.0))
    lines

let test_folded () =
  let folded = Export.to_folded (traced_correction ()) in
  let lines =
    String.split_on_char '\n' folded |> List.filter (fun l -> l <> "")
  in
  check_bool "has at least one stack" true (lines <> []);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "folded line lacks a count: %S" line
      | Some i ->
        let count = String.sub line (i + 1) (String.length line - i - 1) in
        (match int_of_string_opt count with
         | Some n -> check_bool "self-time count non-negative" true (n >= 0)
         | None -> Alcotest.failf "folded count not an integer: %S" line))
    lines;
  check_bool "root frame present" true
    (List.exists
       (fun l ->
         String.length l >= 17 && String.sub l 0 17 = "corrector.correct")
       lines);
  check_bool "nested frame present" true
    (List.exists (fun l -> String.contains l ';') lines)

(* ------------------------------------------------------------------ *)
(* no observable effect while tracing is off                           *)
(* ------------------------------------------------------------------ *)

let test_tracing_off_identical () =
  let correct_to_string () =
    let corrected, _ = C.correct C.Strong (unsound_view ()) in
    Moml.to_string corrected
  in
  let untraced = correct_to_string () in
  let traced =
    let c = T.create () in
    T.with_tracing c correct_to_string
  in
  let untraced_again = correct_to_string () in
  check_bool "corrected view identical with a tracer installed" true
    (String.equal untraced traced);
  check_bool "and identical after the tracer is gone" true
    (String.equal untraced untraced_again)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_invariants () =
  let evs = traced_correction () in
  let p = Profile.of_events evs in
  check_int "event count matches" (List.length evs) p.Profile.events;
  check_int "no orphans in an untruncated trace" 0 p.Profile.orphans;
  List.iter
    (fun (r : Profile.row) ->
      check_bool "self <= total" true (r.Profile.self_s <= r.Profile.total_s +. 1e-12);
      check_bool "max <= total" true (r.Profile.max_s <= r.Profile.total_s +. 1e-12);
      check_bool "count positive" true (r.Profile.count > 0))
    p.Profile.rows;
  List.iter
    (fun (r : Profile.row) ->
      check_bool "phase rows are top-level paths" true
        (not (String.contains r.Profile.path '/')))
    (Profile.phases p);
  check_bool "top_self bounded by k" true
    (List.length (Profile.top_self ~k:2 p) <= 2);
  (match Profile.top_self ~k:100 p with
   | a :: b :: _ ->
     check_bool "top_self sorted descending" true
       (a.Profile.self_s >= b.Profile.self_s)
   | _ -> ());
  check_bool "correct span profiled at the root" true
    (List.exists
       (fun (r : Profile.row) -> r.Profile.path = "corrector.correct")
       (Profile.phases p))

let row_signature p =
  List.map
    (fun (r : Profile.row) -> (r.Profile.path, r.Profile.count))
    p.Profile.rows

let test_profile_load_round_trip () =
  let evs = traced_correction () in
  let direct = Profile.of_events evs in
  let round_trip write path =
    write path;
    match Profile.load path with
    | Error msg -> Alcotest.failf "%s failed to load: %s" path msg
    | Ok loaded ->
      check_bool
        (Printf.sprintf "%s reproduces the span profile" path)
        true
        (row_signature (Profile.of_events loaded) = row_signature direct)
  in
  let tmp suffix = Filename.temp_file "wolves_trace" suffix in
  let chrome = tmp ".json" and jsonl = tmp ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ chrome; jsonl ])
    (fun () ->
      round_trip (Export.write Export.Chrome evs) chrome;
      round_trip (Export.write Export.Jsonl evs) jsonl)

(* ------------------------------------------------------------------ *)
(* the Json parser the loaders depend on                               *)
(* ------------------------------------------------------------------ *)

let test_json_parser () =
  let ok text = match Json.of_string text with
    | Ok v -> v
    | Error msg -> Alcotest.failf "%S should parse: %s" text msg
  in
  check_bool "object with every value kind" true
    (ok {|{"a": 1, "b": -2.5e1, "c": "x\nA", "d": [true, false, null]}|}
     = Json.Obj
         [ ("a", Json.Int 1); ("b", Json.Float (-25.0));
           ("c", Json.String "x\nA");
           ("d", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]) ]);
  check_bool "surrogate pair decodes to UTF-8" true
    (ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80");
  check_bool "trailing input rejected" true
    (Result.is_error (Json.of_string "{} x"));
  check_bool "truncated object rejected" true
    (Result.is_error (Json.of_string {|{"a": 1|}));
  (* Emission -> parsing round-trip, pretty and compact. *)
  let doc =
    Json.Obj
      [ ("nested", Json.Obj [ ("list", Json.List [ Json.Int 1; Json.Float 0.5 ]) ]);
        ("escape", Json.String "tab\there \"quoted\"") ]
  in
  check_bool "pretty round-trips" true (ok (Json.to_string doc) = doc);
  check_bool "compact round-trips" true
    (ok (Json.to_string ~pretty:false doc) = doc)

let () =
  Alcotest.run "trace"
    [ ( "ring",
        [ Alcotest.test_case "overflow drops oldest" `Quick test_ring_overflow ] );
      ( "spans",
        [ Alcotest.test_case "nested reconstruction" `Quick test_spans_nested;
          Alcotest.test_case "orphans and unclosed" `Quick
            test_spans_orphan_and_unclosed ] );
      ( "export",
        [ Alcotest.test_case "chrome structure" `Quick test_chrome_structure;
          Alcotest.test_case "chrome balances after truncation" `Quick
            test_chrome_balances_truncated_stream;
          Alcotest.test_case "jsonl" `Quick test_jsonl;
          Alcotest.test_case "folded stacks" `Quick test_folded ] );
      ( "isolation",
        [ Alcotest.test_case "tracing off is effect-free" `Quick
            test_tracing_off_identical ] );
      ( "profile",
        [ Alcotest.test_case "aggregation invariants" `Quick
            test_profile_invariants;
          Alcotest.test_case "load round-trip" `Quick
            test_profile_load_round_trip ] );
      ( "json",
        [ Alcotest.test_case "parser" `Quick test_json_parser ] ) ]
