(* Tests for the XML substrate: parser, printer, round-trips, failure
   injection on malformed documents. *)

module Ast = Wolves_xml.Ast
module Parse = Wolves_xml.Parse
module Print = Wolves_xml.Print

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let parse_ok src =
  match Parse.document src with
  | Ok e -> e
  | Error err -> Alcotest.failf "parse error: %a" Parse.pp_error err

let parse_err src =
  match Parse.document src with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  | Error err -> err

let test_parse_simple () =
  let e = parse_ok "<a x=\"1\"><b/><b y='2'>hi</b></a>" in
  check_string "root tag" "a" e.Ast.tag;
  Alcotest.(check (option string)) "attr" (Some "1") (Ast.attr e "x");
  Alcotest.(check int) "two b children" 2 (List.length (Ast.children_named e "b"));
  let b2 = List.nth (Ast.children_named e "b") 1 in
  check_string "text content" "hi" (Ast.text_content b2);
  Alcotest.(check (option string)) "single-quoted attr" (Some "2") (Ast.attr b2 "y")

let test_parse_prolog_comments () =
  let e =
    parse_ok
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<root><!-- inner -->\n<leaf/></root>\n<!-- trailer -->"
  in
  check_string "tag" "root" e.Ast.tag;
  Alcotest.(check int) "one element child" 1
    (List.length (Ast.children_named e "leaf"))

let test_parse_entities () =
  let e = parse_ok "<t a=\"x&amp;y&#65;\">1 &lt; 2 &gt; 0 &quot;q&quot; &apos;&#x41;</t>" in
  Alcotest.(check (option string)) "attr entities" (Some "x&yA") (Ast.attr e "a");
  check_string "text entities" "1 < 2 > 0 \"q\" 'A" (Ast.text_content e)

let test_parse_cdata () =
  let e = parse_ok "<t><![CDATA[a <raw> & b]]></t>" in
  check_string "cdata" "a <raw> & b" (Ast.text_content e)

let test_parse_nested_depth () =
  let depth = 2_000 in
  let buf = Buffer.create (depth * 8) in
  for _ = 1 to depth do
    Buffer.add_string buf "<d>"
  done;
  Buffer.add_string buf "x";
  for _ = 1 to depth do
    Buffer.add_string buf "</d>"
  done;
  let e = parse_ok (Buffer.contents buf) in
  check_string "deeply nested" "x" (Ast.text_content e)

let test_parse_errors () =
  let cases =
    [ ("", "no root element");
      ("<a>", "unterminated");
      ("<a></b>", "mismatched");
      ("<a x=\"1\" x=\"2\"/>", "duplicate attribute");
      ("<a>&bogus;</a>", "unknown entity");
      ("<a>&#xFFFFFF;</a>", "invalid character reference");
      ("<a/><b/>", "content after the root");
      ("<a x=1/>", "quoted attribute");
      ("<!DOCTYPE html><a/>", "DTD");
      ("<a b=\"<\"/>", "not allowed in attribute");
      ("<a><!-- no end </a>", "unterminated comment");
      ("<1tag/>", "expected a name") ]
  in
  List.iter
    (fun (src, expected_fragment) ->
      let err = parse_err src in
      let msg = Format.asprintf "%a" Parse.pp_error err in
      let contains =
        let ln = String.length expected_fragment and lh = String.length msg in
        let rec go i =
          i + ln <= lh && (String.sub msg i ln = expected_fragment || go (i + 1))
        in
        go 0
      in
      check_bool (Printf.sprintf "%S -> %s" src expected_fragment) true contains)
    cases

let test_error_position () =
  let err = parse_err "<a>\n  <b oops</b>\n</a>" in
  Alcotest.(check int) "line" 2 err.Parse.line

(* Exact line/column for the classic malformed-document shapes: unclosed
   elements, mismatched closing tags, and broken attribute syntax. The
   column is where the scanner stopped, 1-based. *)
let test_error_positions_exact () =
  let cases =
    [ (* input, line, column, message fragment *)
      ("<root>\n  <child/>\n", 3, 1, "unterminated element <root>");
      ("<a>\n  <b>\n</a>", 3, 4, "mismatched closing tag </a> for <b>");
      ("<a>\n  <b>\n  </c>\n</a>", 3, 6, "mismatched closing tag </c>");
      ("<a>\n  <b oops</b>\n</a>", 2, 11, "expected '='");
      ("<a>\n<b x=1/>\n</a>", 2, 7, "quoted attribute value");
      ("<a x=\"1\"\ny=\"2\" x=\"3\"/>", 2, 8, "duplicate attribute x");
      ("<a>\n\n   &nope;</a>", 3, 10, "unknown entity &nope;") ]
  in
  List.iter
    (fun (src, line, column, fragment) ->
      let err = parse_err src in
      Alcotest.(check int) (Printf.sprintf "%S line" src) line err.Parse.line;
      Alcotest.(check int)
        (Printf.sprintf "%S column" src)
        column err.Parse.column;
      let msg = Format.asprintf "%a" Parse.pp_error err in
      let contains =
        let ln = String.length fragment and lh = String.length msg in
        let rec go i =
          i + ln <= lh && (String.sub msg i ln = fragment || go (i + 1))
        in
        go 0
      in
      check_bool (Printf.sprintf "%S message" src) true contains)
    cases;
  (* pp_error renders the position itself *)
  let rendered =
    Format.asprintf "%a" Parse.pp_error (parse_err "<a>\n<b x=1/>\n</a>")
  in
  check_string "pp_error format" "line 2, column 7: expected a quoted attribute value"
    rendered

let test_print_escapes () =
  check_string "text" "a&amp;b&lt;c&gt;d" (Print.escape_text "a&b<c>d");
  check_string "attr" "&quot;x&amp;&quot;" (Print.escape_attr "\"x&\"")

let test_print_pretty () =
  let doc =
    Ast.{ tag = "workflow";
          attrs = [ ("name", "w & v") ];
          children =
            [ Ast.element ~attrs:[ ("name", "t1") ] "task";
              Ast.element ~attrs:[ ("name", "t2") ]
                ~children:[ Ast.text "notes < here" ] "task" ] }
  in
  let rendered = Print.to_string doc in
  check_string "pretty output"
    "<?xml version=\"1.0\"?>\n\
     <workflow name=\"w &amp; v\">\n\
     \  <task name=\"t1\"/>\n\
     \  <task name=\"t2\">notes &lt; here</task>\n\
     </workflow>\n"
    rendered

let test_roundtrip_fixed () =
  let doc =
    Ast.{ tag = "entity";
          attrs = [ ("name", "top"); ("class", "Composite") ];
          children =
            [ Ast.element ~attrs:[ ("name", "a&b"); ("value", "x\"y") ] "property";
              Ast.element ~attrs:[ ("name", "inner") ]
                ~children:[ Ast.element ~attrs:[ ("name", "deep") ] "entity" ]
                "entity";
              Ast.element ~children:[ Ast.text "line1\nline2 <>&" ] "doc" ] }
  in
  let reparsed = parse_ok (Print.to_string doc) in
  check_bool "round trip" true
    (Ast.equal
       (Ast.strip_whitespace (Ast.Element doc))
       (Ast.strip_whitespace (Ast.Element reparsed)))

(* Random document generator for the round-trip property. *)
let gen_doc =
  let open QCheck2.Gen in
  let name = oneofl [ "entity"; "property"; "relation"; "link"; "doc" ] in
  let attr_name = oneofl [ "name"; "class"; "value"; "rel" ] in
  (* Attribute values and text exercise the escaping machinery. *)
  let attr_value =
    string_size ~gen:(oneofl [ 'a'; 'b'; '&'; '<'; '>'; '"'; '\''; ' '; '\n' ])
      (int_range 0 8)
  in
  let fix_attrs attrs =
    (* Deduplicate attribute names: duplicates are a parse error by design. *)
    List.fold_left
      (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
      [] attrs
  in
  let rec elem depth =
    let children =
      if depth = 0 then return []
      else
        list_size (int_range 0 3)
          (oneof
             [ map (fun e -> Ast.Element e) (elem (depth - 1));
               map
                 (fun s -> Ast.Text (if s = "" then "x" else s))
                 (string_size ~gen:(oneofl [ 'a'; '&'; '<'; ' ' ]) (int_range 1 6)) ])
    in
    map3
      (fun tag attrs children -> Ast.{ tag; attrs = fix_attrs attrs; children })
      name
      (list_size (int_range 0 3) (pair attr_name attr_value))
      children
  in
  elem 3

(* Adjacent text nodes merge on reparse, and indentation introduces blank
   text nodes: merge adjacents first, then drop blank-only texts. *)
let is_blank s = String.for_all (fun c -> c = ' ' || c = '\n' || c = '\t') s

let rec normalize node =
  match node with
  | Ast.Text _ as t -> t
  | Ast.Element e ->
    let merged =
      List.fold_left
        (fun acc child ->
          match (normalize child, acc) with
          | Ast.Text s, Ast.Text s' :: rest -> Ast.Text (s' ^ s) :: rest
          | c, acc -> c :: acc)
        [] e.children
    in
    let children =
      List.filter
        (function Ast.Text s -> not (is_blank s) | Ast.Element _ -> true)
        (List.rev merged)
    in
    Ast.Element { e with children }

let roundtrip_prop =
  QCheck2.Test.make ~name:"print |> parse round-trips (modulo indentation)"
    ~count:300 gen_doc
    (fun doc ->
      match Parse.document (Print.to_string doc) with
      | Error _ -> false
      | Ok reparsed ->
        Ast.equal (normalize (Ast.Element doc)) (normalize (Ast.Element reparsed)))


(* Robustness: the parser must return Ok/Error on arbitrary input, never
   raise, and never loop. *)
let fuzz_random_bytes =
  QCheck2.Test.make ~name:"parser total on random bytes" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
    (fun input ->
      match Parse.document input with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let fuzz_mutated_documents =
  QCheck2.Test.make ~name:"parser total on mutated valid documents" ~count:500
    QCheck2.Gen.(
      triple (int_range 0 1000) (int_range 0 255) gen_doc)
    (fun (pos, byte, doc) ->
      let text = Print.to_string doc in
      let mutated = Bytes.of_string text in
      if Bytes.length mutated > 0 then
        Bytes.set mutated (pos mod Bytes.length mutated) (Char.chr byte);
      match Parse.document (Bytes.to_string mutated) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let fuzz_xml_entity_bombs =
  QCheck2.Test.make ~name:"hostile entity strings rejected cleanly" ~count:200
    QCheck2.Gen.(string_size ~gen:(oneofl [ '&'; '#'; 'x'; '9'; ';'; 'a' ]) (int_range 0 40))
    (fun payload ->
      match Parse.document (Printf.sprintf "<a>%s</a>" payload) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "wolves_xml"
    [ ( "parse",
        [ Alcotest.test_case "simple document" `Quick test_parse_simple;
          Alcotest.test_case "prolog and comments" `Quick test_parse_prolog_comments;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "deep nesting" `Quick test_parse_nested_depth;
          Alcotest.test_case "malformed documents rejected" `Quick test_parse_errors;
          Alcotest.test_case "error carries position" `Quick test_error_position;
          Alcotest.test_case "error positions exact" `Quick
            test_error_positions_exact ] );
      ( "print",
        [ Alcotest.test_case "escaping" `Quick test_print_escapes;
          Alcotest.test_case "pretty printing" `Quick test_print_pretty;
          Alcotest.test_case "fixed round trip" `Quick test_roundtrip_fixed;
          QCheck_alcotest.to_alcotest roundtrip_prop ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest fuzz_random_bytes;
          QCheck_alcotest.to_alcotest fuzz_mutated_documents;
          QCheck_alcotest.to_alcotest fuzz_xml_entity_bombs ] ) ]
